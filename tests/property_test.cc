// Property-based tests: parameterized sweeps over every scheduling
// algorithm x workload shape, checking the invariants that define a valid
// solution to the Action Workload Scheduling Problem (Figure 2), plus
// cross-algorithm dominance properties the paper's results rely on.
#include <gtest/gtest.h>

#include "devices/camera.h"
#include "sched/algorithms.h"
#include "sched/cost_model.h"
#include "sched/executor.h"
#include "sched/workload.h"
#include "util/strings.h"

namespace aorta::sched {
namespace {

struct SweepParam {
  std::string algorithm;
  int n_requests;
  int n_devices;
  double skewness;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string alg = info.param.algorithm;
  for (char& c : alg) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return aorta::util::str_format(
      "%s_n%d_m%d_skew%d_seed%llu", alg.c_str(), info.param.n_requests,
      info.param.n_devices, static_cast<int>(info.param.skewness * 100),
      static_cast<unsigned long long>(info.param.seed));
}

class ScheduleInvariantsTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScheduleInvariantsTest, ScheduleIsValidAndBounded) {
  const SweepParam& p = GetParam();
  auto model = PhotoCostModel::axis2130();
  WorkloadSpec spec;
  spec.n_requests = p.n_requests;
  spec.n_devices = p.n_devices;
  spec.skewness = p.skewness;
  spec.seed = p.seed;
  Workload w = make_photo_workload(spec);

  auto scheduler = make_scheduler(p.algorithm);
  ASSERT_NE(scheduler, nullptr);
  aorta::util::Rng rng(p.seed * 31 + 7);
  ScheduleResult result = scheduler->schedule(w.requests, w.devices, *model, rng);

  // 1. Structural validity: every request serviced exactly once on an
  //    eligible device, no overlapping intervals, durations consistent
  //    with the sequence-dependent cost model, makespan = max finish.
  aorta::util::Status valid =
      validate_schedule(result, w.requests, w.devices, *model);
  EXPECT_TRUE(valid.is_ok()) << valid.to_string();
  EXPECT_TRUE(result.unassigned.empty());
  EXPECT_EQ(result.items.size(), w.requests.size());

  // 2. Lower bound: the makespan is at least the cheapest possible cost of
  //    the most expensive single request (it has to run somewhere), and at
  //    least total-cheapest-work / m.
  double max_min_cost = 0.0;
  double total_min_cost = 0.0;
  for (const auto& r : w.requests) {
    double best = 1e18;
    for (const auto& d : w.devices) {
      best = std::min(best, model->cost_s(r, d.status));
    }
    max_min_cost = std::max(max_min_cost, best);
    total_min_cost += kPhotoMinCostS;  // absolute floor per request
  }
  EXPECT_GE(result.service_makespan_s, max_min_cost - 1e-6);
  EXPECT_GE(result.service_makespan_s,
            total_min_cost / p.n_devices - 1e-6);

  // 3. Upper bound: never worse than running everything sequentially on
  //    one device at the worst possible cost.
  EXPECT_LE(result.service_makespan_s,
            kPhotoMaxCostS * static_cast<double>(p.n_requests) + 1e-6);

  // 4. Determinism: the same seed reproduces the same makespan.
  aorta::util::Rng rng2(p.seed * 31 + 7);
  ScheduleResult again = scheduler->schedule(w.requests, w.devices, *model, rng2);
  EXPECT_DOUBLE_EQ(result.service_makespan_s, again.service_makespan_s);
  EXPECT_EQ(result.cost_evaluations, again.cost_evaluations);
}

std::vector<SweepParam> make_sweep() {
  std::vector<SweepParam> params;
  for (const std::string& alg :
       {std::string("LERFA+SRFE"), std::string("SRFAE"), std::string("LS"),
        std::string("RANDOM")}) {
    for (auto [n, m] : std::vector<std::pair<int, int>>{{5, 2}, {20, 10}, {13, 7}}) {
      for (double skew : {1.0, 0.3}) {
        for (std::uint64_t seed : {1ull, 42ull}) {
          params.push_back(SweepParam{alg, n, m, skew, seed});
        }
      }
    }
  }
  // SA is expensive: a reduced slice.
  params.push_back(SweepParam{"SA", 5, 2, 1.0, 1});
  params.push_back(SweepParam{"SA", 13, 7, 0.3, 42});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleInvariantsTest,
                         ::testing::ValuesIn(make_sweep()), param_name);

// ----------------------------------------------------- dominance properties

class DominanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominanceTest, CostAwareAlgorithmsBeatRandomOnAverage) {
  auto model = PhotoCostModel::axis2130();
  double ours = 0.0, baseline = 0.0;
  // Averaged over several workloads per seed-group to avoid flaky
  // single-instance comparisons.
  for (int k = 0; k < 5; ++k) {
    WorkloadSpec spec;
    spec.n_requests = 20;
    spec.n_devices = 10;
    spec.seed = GetParam() * 100 + static_cast<std::uint64_t>(k);
    Workload w = make_photo_workload(spec);
    aorta::util::Rng rng1(spec.seed + 1);
    aorta::util::Rng rng2(spec.seed + 1);
    ours += LerfaSrfeScheduler()
                .schedule(w.requests, w.devices, *model, rng1)
                .service_makespan_s;
    baseline += RandomScheduler()
                    .schedule(w.requests, w.devices, *model, rng2)
                    .service_makespan_s;
  }
  EXPECT_LT(ours, baseline);
}

TEST_P(DominanceTest, MakespanGrowsWithRequestCount) {
  auto model = PhotoCostModel::axis2130();
  for (const std::string& alg : {std::string("LERFA+SRFE"), std::string("SRFAE"),
                                 std::string("LS")}) {
    double small = 0.0, large = 0.0;
    for (int k = 0; k < 5; ++k) {
      WorkloadSpec spec;
      spec.n_devices = 10;
      spec.seed = GetParam() * 100 + static_cast<std::uint64_t>(k);
      spec.n_requests = 10;
      Workload w_small = make_photo_workload(spec);
      spec.n_requests = 40;
      Workload w_large = make_photo_workload(spec);
      aorta::util::Rng rng1(spec.seed);
      aorta::util::Rng rng2(spec.seed);
      auto scheduler = make_scheduler(alg);
      small += scheduler->schedule(w_small.requests, w_small.devices, *model, rng1)
                   .service_makespan_s;
      large += scheduler->schedule(w_large.requests, w_large.devices, *model, rng2)
                   .service_makespan_s;
    }
    EXPECT_LT(small, large) << alg;
  }
}

TEST_P(DominanceTest, MoreDevicesNeverHurtMuch) {
  // Adding devices (with the same request set eligible everywhere) should
  // not increase the makespan materially for the cost-aware algorithms.
  auto model = PhotoCostModel::axis2130();
  for (const std::string& alg :
       {std::string("LERFA+SRFE"), std::string("SRFAE")}) {
    double few = 0.0, many = 0.0;
    for (int k = 0; k < 5; ++k) {
      std::uint64_t seed = GetParam() * 100 + static_cast<std::uint64_t>(k);
      WorkloadSpec spec;
      spec.n_requests = 20;
      spec.seed = seed;
      spec.n_devices = 5;
      Workload w_few = make_photo_workload(spec);
      spec.n_devices = 15;
      Workload w_many = make_photo_workload(spec);
      aorta::util::Rng rng1(seed);
      aorta::util::Rng rng2(seed);
      auto scheduler = make_scheduler(alg);
      few += scheduler->schedule(w_few.requests, w_few.devices, *model, rng1)
                 .service_makespan_s;
      many += scheduler->schedule(w_many.requests, w_many.devices, *model, rng2)
                  .service_makespan_s;
    }
    EXPECT_LT(many, few * 1.05) << alg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceTest, ::testing::Values(1, 2, 3));

// --------------------------------------------- executor property checks

class ExecutorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorPropertyTest, LockedExecutionMatchesScheduleShape) {
  // Execute a real schedule against simulated cameras and check the
  // actual makespan is within sane bounds of the planned one, and that no
  // photo is degraded (locks prevent interference by construction).
  util::SimClock clock;
  util::EventLoop loop(&clock);
  net::Network network(&loop, util::Rng(GetParam()));
  device::DeviceRegistry registry(&network, &loop, util::Rng(GetParam() + 1));
  (void)registry.register_type(devices::camera_type_info());
  comm::CommLayer comm(&registry, &network);
  sync::LockManager locks(&loop);

  WorkloadSpec spec;
  spec.n_requests = 10;
  spec.n_devices = 4;
  spec.seed = GetParam();
  Workload w = make_photo_workload(spec);
  for (const auto& dev : w.devices) {
    auto camera = std::make_unique<devices::PtzCamera>(
        dev.id, "10.0.0." + dev.id, devices::CameraPose{{0, 0, 3}, 0.0});
    camera->set_head(devices::PtzPosition{dev.status.at("pan"),
                                          dev.status.at("tilt"),
                                          dev.status.at("zoom")});
    camera->reliability().glitch_prob = 0.0;
    camera->set_fatigue_coeff(0.0);
    ASSERT_TRUE(registry.add(std::move(camera)).is_ok());
  }

  auto model = PhotoCostModel::axis2130();
  util::Rng rng(GetParam() + 7);
  ScheduleResult schedule =
      SrfaeScheduler().schedule(w.requests, w.devices, *model, rng);

  ScheduleExecutor executor(&locks, &loop, make_photo_execute_fn(&comm));
  ExecutionReport report;
  bool finished = false;
  executor.execute(schedule, w.requests, [&](ExecutionReport r) {
    report = std::move(r);
    finished = true;
  });
  loop.run_for(util::Duration::minutes(5));
  ASSERT_TRUE(finished);

  EXPECT_EQ(report.actions_degraded, 0u);
  EXPECT_EQ(report.actions_usable + report.failures, w.requests.size());
  // Actual makespan is planned makespan plus network/dispatch overhead:
  // within [planned, planned * 1.3 + 1s] barring timeouts.
  if (report.failures == 0) {
    EXPECT_GE(report.actual_makespan_s, schedule.service_makespan_s - 1e-6);
    EXPECT_LE(report.actual_makespan_s,
              schedule.service_makespan_s * 1.3 + 1.0);
  }
  // Every lock acquired was released.
  EXPECT_EQ(locks.stats().acquisitions, locks.stats().releases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace aorta::sched
