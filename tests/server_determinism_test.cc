// Two Aorta instances with the same Config::seed and the same server
// workload must produce identical event traces and byte-identical server
// statistics: the service layer (ticks, admission, mailboxes) and the
// workload generator draw only from seeded Rngs and the simulated clock.
#include <gtest/gtest.h>

#include <string>

#include "core/aorta.h"
#include "server/service.h"
#include "server/workload_gen.h"

namespace aorta {
namespace {

using util::Duration;

struct RunOutput {
  std::string stats_json;
  std::string trace;
  std::uint64_t submitted = 0;
};

RunOutput run_once(std::uint64_t seed,
                   Duration freshness = Duration::zero(),
                   const std::string& fault_xml = "") {
  core::Config cfg;
  cfg.seed = seed;
  cfg.shared_scans = true;
  cfg.scan_freshness = freshness;
  core::Aorta sys(cfg);
  for (int i = 0; i < 3; ++i) {
    std::string id = "m" + std::to_string(i);
    (void)sys.add_mote(id, {static_cast<double>(i * 2), 0, 1}, 1 + i % 2);
    (void)sys.mote(id)->set_signal(
        "accel_x", devices::periodic_spike_signal(0.0, 900.0,
                                                  Duration::seconds(7.0),
                                                  Duration::seconds(1.0)));
    (void)sys.mote(id)->set_signal("temp", devices::constant_signal(20.0));
  }
  if (!fault_xml.empty()) {
    auto plan = util::FaultPlan::from_xml(fault_xml);
    EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
    EXPECT_TRUE(sys.apply_fault_plan(plan.value()).is_ok());
  }

  server::ServiceConfig sc;
  sc.admission.queue_capacity = 32;
  sc.admission.policy = util::OverflowPolicy::kShedOldest;
  server::QueryService service(&sys, sc);

  server::WorkloadConfig wc;
  wc.tenants = 3;
  wc.sessions_per_tenant = 4;
  wc.mode = server::WorkloadConfig::Mode::kOpenLoop;
  wc.arrival_rate_hz = 2.0;
  wc.aq_fraction = 0.2;
  wc.seed = 99;
  wc.rate_multipliers["t0"] = 3.0;
  server::WorkloadGen gen(&service, &sys, wc);
  gen.start();
  sys.run_for(Duration::seconds(20));
  gen.stop();

  RunOutput out;
  out.stats_json = service.stats_json();
  out.submitted = gen.stats().submitted;
  for (const query::TraceEntry& e : sys.executor().trace()) {
    out.trace += std::to_string(e.at.to_micros()) + "|" + e.query + "|" +
                 e.kind + "|" + e.detail + "\n";
  }
  return out;
}

TEST(ServerDeterminismTest, SameSeedSameWorkloadIsByteIdentical) {
  RunOutput a = run_once(42);
  RunOutput b = run_once(42);
  EXPECT_GT(a.submitted, 0u);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.stats_json, b.stats_json);
}

// The shared acquisition plane (ScanBroker) sits between the workload's
// AQs/SELECTs and the radio; with the freshness cache engaged it must stay
// fully deterministic, and its counters must show up in the rendered stats.
TEST(ServerDeterminismTest, SharedScanPlaneIsByteIdentical) {
  RunOutput a = run_once(7, Duration::millis(250));
  RunOutput b = run_once(7, Duration::millis(250));
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_NE(a.stats_json.find("\"scan_broker\""), std::string::npos);
  EXPECT_NE(a.stats_json.find("\"rpcs_issued\""), std::string::npos);
  // The workload mixes sensor SELECTs and AQs, so the broker must have
  // issued sensory RPCs over the sensor table.
  EXPECT_NE(a.stats_json.find("\"sensor\""), std::string::npos);
  // Compiled-evaluation counters render too, and the AQ predicates are
  // simple enough that they must all have compiled (hot path, not the
  // tree-walking fallback).
  EXPECT_NE(a.stats_json.find("\"eval\""), std::string::npos);
  EXPECT_NE(a.stats_json.find("\"compiled_evals\""), std::string::npos);
  EXPECT_EQ(a.stats_json.find("\"compiled_evals\": 0,"), std::string::npos);
}

// Scripted faults must not cost determinism: the same seed plus the same
// fault plan yields byte-identical stats, including the health-supervision
// and transport counters the faults exercise.
TEST(ServerDeterminismTest, SameSeedSameFaultPlanIsByteIdentical) {
  const std::string plan =
      "<fault_plan>"
      "<event at=\"4\" kind=\"crash\" device=\"m1\"/>"
      "<event at=\"12\" kind=\"revive\" device=\"m1\"/>"
      "<event at=\"6\" kind=\"loss\" device=\"m2\" prob=\"0.9\" for=\"5\"/>"
      "<event at=\"8\" kind=\"partition\" device=\"m0\"/>"
      "<event at=\"10\" kind=\"heal\" device=\"m0\"/>"
      "</fault_plan>";
  RunOutput a = run_once(42, Duration::zero(), plan);
  RunOutput b = run_once(42, Duration::zero(), plan);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.stats_json, b.stats_json);
  // The chaos counters render into the stats document.
  EXPECT_NE(a.stats_json.find("\"health\""), std::string::npos);
  EXPECT_NE(a.stats_json.find("\"network\""), std::string::npos);
  EXPECT_NE(a.stats_json.find("\"rows_degraded\""), std::string::npos);
  // And the faults actually changed the run.
  RunOutput calm = run_once(42);
  EXPECT_NE(a.stats_json, calm.stats_json);
}

TEST(ServerDeterminismTest, DifferentSeedsDiverge) {
  RunOutput a = run_once(42);
  RunOutput b = run_once(43);
  // Different engine seeds shift link jitter and scheduling draws; the
  // traces should not be byte-identical (stats may coincide by chance,
  // the full trace will not).
  EXPECT_NE(a.trace, b.trace);
}

}  // namespace
}  // namespace aorta
