// Negative tests for error reporting at the declarative interface:
// parser diagnostics must point at the offending statement fragment, and
// malformed XML profile documents must fail loudly with element/attribute
// context instead of silently defaulting fields.
#include <gtest/gtest.h>

#include <string>

#include "core/aorta.h"
#include "device/profile_io.h"
#include "query/parser.h"
#include "util/xml.h"

namespace aorta {
namespace {

// --------------------------------------------------- parser diagnostics

TEST(ParserDiagnosticsTest, ErrorsCarryOffsetAndFragment) {
  auto result = query::parse("SELECT s.temp FROM WHERE s.temp > 0");
  ASSERT_FALSE(result.is_ok());
  std::string msg = result.status().message();
  EXPECT_NE(msg.find("at offset"), std::string::npos) << msg;
  EXPECT_NE(msg.find("near 'WHERE"), std::string::npos) << msg;
}

TEST(ParserDiagnosticsTest, FragmentPointsAtTheBadToken) {
  auto result = query::parse("CREATE AQ q AS SELECT s.temp FROM sensor s "
                             "WHERE s.temp >");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("at offset"), std::string::npos)
      << result.status().message();

  auto garbage = query::parse("SELECT s.temp FROM sensor s WHERE > 3");
  ASSERT_FALSE(garbage.is_ok());
  EXPECT_NE(garbage.status().message().find("near '> 3'"), std::string::npos)
      << garbage.status().message();

  // Stray characters are caught by the lexer, which reports the offset.
  auto stray = query::parse("SELECT s.temp FROM sensor s WHERE ^ > 3");
  ASSERT_FALSE(stray.is_ok());
  EXPECT_NE(stray.status().message().find("'^' at offset"), std::string::npos)
      << stray.status().message();
}

TEST(ParserDiagnosticsTest, LongStatementsTruncateTheFragment) {
  std::string tail(200, 'x');
  auto result =
      query::parse("SELECT s.temp FROM sensor s WHERE > " + tail);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("...'"), std::string::npos)
      << result.status().message();
}

// ------------------------------------------------- strict XML numerics

TEST(XmlCheckedAttrTest, AbsentAttributeYieldsFallback) {
  auto doc = util::xml_parse("<a/>");
  ASSERT_TRUE(doc.is_ok());
  auto d = doc.value()->attr_double_checked("missing", 1.5);
  ASSERT_TRUE(d.is_ok());
  EXPECT_DOUBLE_EQ(d.value(), 1.5);
  auto i = doc.value()->attr_int_checked("missing", 7);
  ASSERT_TRUE(i.is_ok());
  EXPECT_EQ(i.value(), 7);
}

TEST(XmlCheckedAttrTest, MalformedValueIsAParseErrorWithContext) {
  auto doc = util::xml_parse("<link speed=\"fast\" count=\"12xy\"/>");
  ASSERT_TRUE(doc.is_ok());
  auto d = doc.value()->attr_double_checked("speed", 0.0);
  ASSERT_FALSE(d.is_ok());
  EXPECT_EQ(d.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(d.status().message().find("link"), std::string::npos);
  EXPECT_NE(d.status().message().find("speed"), std::string::npos);

  auto i = doc.value()->attr_int_checked("count", 0);
  ASSERT_FALSE(i.is_ok());
  EXPECT_NE(i.status().message().find("count"), std::string::npos);
}

// ------------------------------------------- device profile documents

TEST(ProfileStrictParsingTest, MalformedTimeoutIsRejectedWithContext) {
  auto parsed = device::device_type_from_xml(
      "<device_type id=\"x\" probe_timeout_ms=\"soon\">"
      "<catalog device_type=\"x\"/></device_type>");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("probe_timeout_ms"),
            std::string::npos)
      << parsed.status().to_string();
}

TEST(ProfileStrictParsingTest, MalformedLinkAttributeIsRejected) {
  auto parsed = device::device_type_from_xml(
      "<device_type id=\"x\" probe_timeout_ms=\"2000\">"
      "<link latency_mean_s=\"0.002ish\"/>"
      "<catalog device_type=\"x\"/></device_type>");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("latency_mean_s"),
            std::string::npos)
      << parsed.status().to_string();
}

TEST(ProfileStrictParsingTest, FacadeSurfacesXmlErrorsWithContext) {
  core::Aorta sys(core::Config{});
  // A well-formed document whose numeric field is garbage must not
  // register a type with silently-defaulted fields.
  auto status = sys.register_type_from_xml(
      "<device_type id=\"flaky\" probe_timeout_ms=\"NaNms\">"
      "<catalog device_type=\"flaky\"/></device_type>");
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("probe_timeout_ms"), std::string::npos)
      << status.to_string();
  EXPECT_EQ(sys.registry().type_info("flaky"), nullptr);
}

}  // namespace
}  // namespace aorta
