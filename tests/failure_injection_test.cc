// Failure injection: the behaviours Aorta must keep under packet loss,
// device glitches, partitions mid-operation, and crashes — Section 4's
// premise that "physical devices in pervasive computing are intrinsically
// unreliable".
#include <gtest/gtest.h>

#include "comm/scan_operator.h"
#include "core/aorta.h"
#include "util/strings.h"

namespace aorta {
namespace {

using util::Duration;
using util::TimePoint;

// ----------------------------------------------------- radio loss sweeps

class RadioLossTest : public ::testing::TestWithParam<double> {};

TEST_P(RadioLossTest, ScanSuccessDegradesGracefullyWithLoss) {
  const double loss = GetParam();
  util::SimClock clock;
  util::EventLoop loop(&clock);
  net::Network network(&loop, util::Rng(7));
  device::DeviceRegistry registry(&network, &loop, util::Rng(8));
  (void)registry.register_type(devices::sensor_type_info());
  comm::CommLayer comm(&registry, &network);

  for (int i = 0; i < 10; ++i) {
    auto mote = std::make_unique<devices::Mica2Mote>(
        "m" + std::to_string(i), device::Location{});
    mote->reliability().glitch_prob = 0.0;
    ASSERT_TRUE(registry.add(std::move(mote)).is_ok());
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = loss;
    ASSERT_TRUE(network.set_link("m" + std::to_string(i), link).is_ok());
  }

  comm::ScanOperator scan(&registry, &comm, "sensor", {"temp"});
  std::size_t produced = 0;
  const int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    scan.scan([&](std::vector<comm::Tuple> tuples) { produced += tuples.size(); });
    loop.run_for(Duration::seconds(5));
  }

  double rate = static_cast<double>(produced) / (10.0 * kRounds);
  if (loss == 0.0) {
    EXPECT_DOUBLE_EQ(rate, 1.0);
  } else if (loss >= 1.0) {
    EXPECT_DOUBLE_EQ(rate, 0.0);
    EXPECT_EQ(scan.stats().devices_skipped, 10u * kRounds);
  } else {
    // Each read crosses two lossy traversals: success ~ (1-loss)^2, with
    // generous slack for sampling noise.
    double expected = (1.0 - loss) * (1.0 - loss);
    EXPECT_NEAR(rate, expected, 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, RadioLossTest,
                         ::testing::Values(0.0, 0.1, 0.3, 1.0));

// -------------------------------------------------- full-stack injections

struct FailureFixture : public ::testing::Test {
  void build(std::uint64_t seed = 3) {
    core::Config config;
    config.seed = seed;
    sys = std::make_unique<core::Aorta>(config);
    ASSERT_TRUE(sys->add_camera("cam1", "10.0.0.1", {{0, 0, 3}, 0.0}).is_ok());
    ASSERT_TRUE(sys->add_mote("mote1", {2, 1, 1}).is_ok());
    sys->mote("mote1")->reliability().glitch_prob = 0.0;
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    ASSERT_TRUE(sys->network().set_link("mote1", link).is_ok());
    sys->camera("cam1")->set_fatigue_coeff(0.0);
    sys->camera("cam1")->reliability().glitch_prob = 0.0;
  }

  void spike_at(double t_s) {
    auto* signal = dynamic_cast<devices::ScriptedSignal*>(
        sys->mote("mote1")->signal("accel_x"));
    if (signal == nullptr) {
      auto script = std::make_unique<devices::ScriptedSignal>(0.0);
      signal = script.get();
      (void)sys->mote("mote1")->set_signal("accel_x", std::move(script));
    }
    signal->add_spike(
        TimePoint::from_micros(static_cast<std::int64_t>(t_s * 1e6)),
        Duration::seconds(2), 900.0);
  }

  void register_snapshot() {
    ASSERT_TRUE(sys->exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                          "FROM sensor s, camera c "
                          "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                    .is_ok());
  }

  std::unique_ptr<core::Aorta> sys;
};

TEST_F(FailureFixture, CameraGlitchCountsAsFailureAndReleasesLock) {
  build();
  sys->camera("cam1")->reliability().glitch_prob = 1.0;  // always fails
  spike_at(10.0);
  register_snapshot();
  sys->run_for(Duration::seconds(40));

  auto as = sys->action_stats("q");
  EXPECT_EQ(as.failed, 1u);
  EXPECT_EQ(as.usable, 0u);
  // The lock was released despite the failure.
  EXPECT_EQ(sys->stats().locks.acquisitions, sys->stats().locks.releases);
  EXPECT_FALSE(sys->locks().is_locked("cam1"));
}

TEST_F(FailureFixture, CameraDiesBetweenProbeAndAction) {
  build();
  spike_at(10.0);
  register_snapshot();
  // Let the probe round succeed, then kill the camera before the photo
  // request lands (probe ~ms, photo dispatched right after; the camera
  // dies at t=10.5s while the action is being serviced or in flight).
  sys->run_for(Duration::seconds(10.4));
  sys->camera("cam1")->set_online(false);
  sys->run_for(Duration::seconds(60));

  auto as = sys->action_stats("q");
  EXPECT_EQ(as.usable + as.failed + as.no_candidate, 1u);
  EXPECT_EQ(as.usable, 0u);  // photo can't have completed
  EXPECT_FALSE(sys->locks().is_locked("cam1"));  // no stranded lock
}

TEST_F(FailureFixture, MotePartitionSuppressesEventsUntilHealed) {
  build();
  spike_at(10.0);
  spike_at(70.0);
  register_snapshot();

  sys->network().partition("mote1");  // radio dead: no samples arrive
  sys->run_for(Duration::seconds(40));
  EXPECT_EQ(sys->query_stats("q")->events, 0u);

  sys->network().heal("mote1");
  sys->run_for(Duration::seconds(60));
  EXPECT_EQ(sys->query_stats("q")->events, 1u);  // only the second spike
}

TEST_F(FailureFixture, FailedSensoryReadNeverFiresEvent) {
  build();
  // The mote answers probes but every accel read glitches.
  sys->mote("mote1")->reliability().glitch_prob = 1.0;
  spike_at(10.0);
  register_snapshot();
  sys->run_for(Duration::seconds(40));
  EXPECT_EQ(sys->query_stats("q")->events, 0u);
  EXPECT_EQ(sys->action_stats("q").requests, 0u);
}

TEST_F(FailureFixture, LossyEverythingStillMakesProgress) {
  // End-to-end smoke under adverse conditions: lossy radio, occasional
  // camera glitches — some photos succeed, nothing crashes or deadlocks.
  build(11);
  auto link = net::LinkModel::mote_radio();  // 8% loss
  ASSERT_TRUE(sys->network().set_link("mote1", link).is_ok());
  sys->camera("cam1")->reliability().glitch_prob = 0.05;
  (void)sys->mote("mote1")->set_signal(
      "accel_x", devices::periodic_spike_signal(0.0, 900.0, Duration::seconds(30),
                                                Duration::seconds(3)));
  register_snapshot();
  sys->run_for(Duration::minutes(10));

  auto as = sys->action_stats("q");
  EXPECT_GT(as.requests, 10u);
  EXPECT_GT(as.usable, as.requests / 2);
  EXPECT_EQ(sys->stats().locks.acquisitions, sys->stats().locks.releases);
}

TEST_F(FailureFixture, DeterministicReplayWithSameSeed) {
  // Two full-stack runs with identical seeds produce identical statistics
  // — the property every experiment in this repo rests on.
  auto run_once = [](std::uint64_t seed) {
    core::Config config;
    config.seed = seed;
    core::Aorta sys(config);
    (void)sys.add_camera("cam1", "10.0.0.1", {{0, 0, 3}, 0.0});
    (void)sys.add_mote("mote1", {2, 1, 1});
    (void)sys.mote("mote1")->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 900.0, Duration::seconds(20),
                                       Duration::seconds(2)));
    (void)sys.exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                   "FROM sensor s, camera c "
                   "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
    sys.run_for(Duration::minutes(5));
    auto as = sys.action_stats("q");
    auto net_stats = sys.stats().network;
    return std::tuple(as.requests, as.usable, as.failed, net_stats.sent,
                      net_stats.delivered);
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));  // and seeds matter
}

}  // namespace
}  // namespace aorta
