// Tests for one-shot SELECT features: aggregates, projections over joins,
// expression projections, and multi-action continuous queries.
#include <gtest/gtest.h>

#include "core/aorta.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;

struct SelectFixture : public ::testing::Test {
  SelectFixture() : sys(core::Config{.seed = 17}) {
    for (int i = 1; i <= 4; ++i) {
      std::string id = "m" + std::to_string(i);
      EXPECT_TRUE(sys.add_mote(id, {static_cast<double>(i), 0, 1}).is_ok());
      sys.mote(id)->reliability().glitch_prob = 0.0;
      auto link = net::LinkModel::mote_radio();
      link.loss_prob = 0.0;
      EXPECT_TRUE(sys.network().set_link(id, link).is_ok());
      // temp: 20, 22, 24, 26
      (void)sys.mote(id)->set_signal(
          "temp", devices::constant_signal(18.0 + 2.0 * i));
    }
  }

  // Returns the single value of a single-row, single-column result.
  Value scalar(const std::string& sql) {
    auto r = sys.exec(sql);
    EXPECT_TRUE(r.is_ok()) << sql << ": " << r.status().to_string();
    if (!r.is_ok() || r->rows.size() != 1 || r->rows[0].size() != 1) {
      ADD_FAILURE() << sql << " did not yield one scalar";
      return Value{};
    }
    return r->rows[0][0].second;
  }

  core::Aorta sys;
};

TEST_F(SelectFixture, CountAllRows) {
  EXPECT_TRUE(device::value_equal(scalar("SELECT count() FROM sensor s"),
                                  Value{std::int64_t{4}}));
}

TEST_F(SelectFixture, CountWithPredicate) {
  EXPECT_TRUE(device::value_equal(
      scalar("SELECT count(s.id) FROM sensor s WHERE s.temp > 23"),
      Value{std::int64_t{2}}));
}

TEST_F(SelectFixture, AvgMinMaxSum) {
  Value avg = scalar("SELECT avg(s.temp) FROM sensor s");
  double x = 0;
  ASSERT_TRUE(device::value_as_double(avg, &x));
  EXPECT_NEAR(x, 23.0, 1e-9);

  ASSERT_TRUE(device::value_as_double(
      scalar("SELECT min(s.temp) FROM sensor s"), &x));
  EXPECT_NEAR(x, 20.0, 1e-9);
  ASSERT_TRUE(device::value_as_double(
      scalar("SELECT max(s.temp) FROM sensor s"), &x));
  EXPECT_NEAR(x, 26.0, 1e-9);
  ASSERT_TRUE(device::value_as_double(
      scalar("SELECT sum(s.temp) FROM sensor s"), &x));
  EXPECT_NEAR(x, 92.0, 1e-9);
}

TEST_F(SelectFixture, MultipleAggregatesInOneQuery) {
  auto r = sys.exec("SELECT count(), avg(s.temp), max(s.temp) FROM sensor s");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  ASSERT_EQ(r->rows[0].size(), 3u);
}

TEST_F(SelectFixture, AggregateOverEmptyMatchSet) {
  EXPECT_TRUE(device::value_equal(
      scalar("SELECT count() FROM sensor s WHERE s.temp > 1000"),
      Value{std::int64_t{0}}));
  // AVG of nothing is NULL.
  Value avg = scalar("SELECT avg(s.temp) FROM sensor s WHERE s.temp > 1000");
  EXPECT_TRUE(std::holds_alternative<std::monostate>(avg));
}

TEST_F(SelectFixture, MixingAggregatesAndColumnsRejected) {
  EXPECT_FALSE(sys.exec("SELECT s.id, count() FROM sensor s").is_ok());
  EXPECT_FALSE(sys.exec("SELECT avg(s.temp, s.light) FROM sensor s").is_ok());
  EXPECT_FALSE(sys.exec("SELECT sum() FROM sensor s").is_ok());
}

TEST_F(SelectFixture, ExpressionProjection) {
  auto r = sys.exec("SELECT s.id, s.temp * 9 / 5 + 32 FROM sensor s "
                    "WHERE s.id = 'm1'");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  double fahrenheit = 0;
  ASSERT_TRUE(device::value_as_double(r->rows[0][1].second, &fahrenheit));
  EXPECT_NEAR(fahrenheit, 68.0, 1e-9);
}

TEST_F(SelectFixture, StarProjectionListsAllColumns) {
  auto r = sys.exec("SELECT * FROM sensor s WHERE s.id = 'm2'");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r->rows.size(), 1u);
  // One column per catalog attribute.
  EXPECT_EQ(r->rows[0].size(),
            devices::sensor_type_info().catalog.attrs().size());
}

TEST_F(SelectFixture, OneShotJoinMayUseSensoryAttrsOnBothTables) {
  // Camera head status (sensory) joined against sensor temperature
  // (sensory): rejected in continuous mode, but one-shot SELECTs scan
  // every table live.
  ASSERT_TRUE(sys.add_camera("camx", "10.0.0.7", {{0, 0, 3}, 0.0}).is_ok());
  sys.camera("camx")->reliability().glitch_prob = 0.0;
  sys.camera("camx")->set_head(devices::PtzPosition{42, -10, 2});

  auto r = sys.exec("SELECT s.id, c.pan FROM sensor s, camera c "
                    "WHERE s.temp > 23 AND c.pan > 0");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r->rows.size(), 2u);  // m3, m4 x the one camera
  double pan = 0;
  ASSERT_TRUE(device::value_as_double(r->rows[0][1].second, &pan));
  EXPECT_DOUBLE_EQ(pan, 42.0);

  // The same shape as a continuous query is still rejected.
  EXPECT_FALSE(sys.exec("CREATE AQ bad AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c "
                        "WHERE s.temp > 23 AND c.pan > 0")
                   .is_ok());
}

TEST_F(SelectFixture, ExplainDescribesThePlan) {
  auto r = sys.exec("EXPLAIN SELECT s.id FROM sensor s WHERE s.temp > 25");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_NE(r->message.find("event table: s (sensor)"), std::string::npos);
  EXPECT_NE(r->message.find("edge-triggered"), std::string::npos);
  EXPECT_NE(r->message.find("(s.temp > 25)"), std::string::npos);

  // EXPLAIN does not register anything.
  auto queries = sys.exec("SHOW QUERIES");
  ASSERT_TRUE(queries.is_ok());
  EXPECT_TRUE(queries->rows.empty());
}

TEST_F(SelectFixture, ExplainCreateAqShowsActionsAndPushdown) {
  ASSERT_TRUE(sys.add_camera("cam1", "10.0.0.9", {{0, 0, 3}, 0.0}).is_ok());
  auto r = sys.exec(
      "EXPLAIN CREATE AQ snap AS SELECT photo(c.ip, s.loc, 'd') "
      "FROM sensor s, camera c "
      "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_NE(r->message.find("photo on camera via candidate table c"),
            std::string::npos);
  EXPECT_NE(r->message.find("coverage(c.id, s.loc)"), std::string::npos);
  EXPECT_NE(r->message.find("projection pushdown"), std::string::npos);
}

TEST_F(SelectFixture, ExplainRejectsBadTargets) {
  EXPECT_FALSE(sys.exec("EXPLAIN DROP AQ x").is_ok());
  EXPECT_FALSE(sys.exec("EXPLAIN SELECT x FROM warp").is_ok());
}

// --------------------------------------------------- multi-action queries

TEST(MultiActionTest, OneQueryTwoActionsTwoDeviceTypes) {
  core::Aorta sys(core::Config{.seed = 23});
  ASSERT_TRUE(sys.add_camera("cam1", "10.0.0.1", {{0, 0, 3}, 0.0}).is_ok());
  sys.camera("cam1")->reliability().glitch_prob = 0.0;
  sys.camera("cam1")->set_fatigue_coeff(0.0);
  ASSERT_TRUE(sys.add_mote("mote1", {2, 1, 1}).is_ok());
  sys.mote("mote1")->reliability().glitch_prob = 0.0;
  auto link = net::LinkModel::mote_radio();
  link.loss_prob = 0.0;
  ASSERT_TRUE(sys.network().set_link("mote1", link).is_ok());

  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(util::TimePoint::from_micros(10'000'000),
                    Duration::seconds(2), 900.0);
  (void)sys.mote("mote1")->set_signal("accel_x", std::move(script));

  // On movement: photograph the spot AND beep the mote that sensed it —
  // two embedded actions on two device types from one query.
  ASSERT_TRUE(sys.exec("CREATE AQ both AS "
                       "SELECT photo(c.ip, s.loc, 'd'), beep(s.id) "
                       "FROM sensor s, camera c "
                       "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys.run_for(Duration::seconds(60));

  auto as = sys.action_stats("both");
  EXPECT_EQ(as.requests, 2u);  // one photo request + one beep request
  EXPECT_EQ(as.usable, 2u);
  EXPECT_EQ(sys.camera("cam1")->camera_stats().photos_ok, 1u);
  EXPECT_EQ(sys.mote("mote1")->beeps(), 1u);
  // Two distinct shared operators exist (photo and beep).
  EXPECT_EQ(sys.executor().operators().size(), 2u);
}

}  // namespace
}  // namespace aorta
