// Unit tests for the observability substrate (src/obs) and the JSON
// writer it renders through: escaping, registry enrollment and the
// nested-name walk, latency histograms, and the span tracer's ring
// buffer + Chrome trace-event export.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/time.h"

namespace aorta {
namespace {

using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::Span;
using obs::SpanCat;
using obs::Tracer;
using util::Duration;
using util::JsonWriter;
using util::TimePoint;

// ------------------------------------------------------------ JsonWriter

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape("\r\b\f"), "\\r\\b\\f");
  EXPECT_EQ(JsonWriter::escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonWriterTest, CompactObjectAndArray) {
  JsonWriter w(0);
  w.begin_object();
  w.kv("name", "aorta");
  w.kv("n", std::uint64_t{42});
  w.kv("ok", true);
  w.key("xs").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"name\":\"aorta\",\"n\":42,\"ok\":true,\"xs\":[1,2,3]}");
}

TEST(JsonWriterTest, IndentedNestedObjects) {
  JsonWriter w(2);
  w.begin_object();
  w.key("outer").begin_object();
  w.kv("inner", 1);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"outer\": {\n    \"inner\": 1\n  }\n}");
}

TEST(JsonWriterTest, DoublePrecisionAndNonFinite) {
  JsonWriter w(0);
  w.begin_object();
  w.kv("p50", 117.6329, 3);
  w.kv("half", 0.5);
  w.kv("nan", std::nan(""), 3);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"p50\":117.633,\"half\":0.500,\"nan\":null}");
}

TEST(JsonWriterTest, StringValuesAreEscaped) {
  JsonWriter w(0);
  w.begin_object();
  w.kv("sql", "SELECT \"x\"\nFROM t");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"sql\":\"SELECT \\\"x\\\"\\nFROM t\"}");
}

// ------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, SummaryMatchesExactSamples) {
  LatencyHistogram h(0.0, 100.0, 10);
  for (double v : {5.0, 15.0, 15.0, 95.0, 250.0}) h.add(v);
  EXPECT_EQ(h.summary().count(), 5u);
  EXPECT_DOUBLE_EQ(h.summary().max(), 250.0);
  // 250 is out of range: it lands in overflow, not a bucket.
  EXPECT_EQ(h.buckets().overflow(), 1u);
  EXPECT_EQ(h.buckets().bucket(1), 2u);  // [10, 20): both 15s
}

TEST(LatencyHistogramTest, WriteJsonHistoricShape) {
  LatencyHistogram h;
  h.add(100.0);
  JsonWriter w(0);
  h.write_json(w, /*include_buckets=*/false);
  EXPECT_EQ(w.str(), "{\"count\":1,\"p50\":100.000,\"p99\":100.000,\"max\":100.000}");
}

// -------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CountersGaugesAndPointReads) {
  MetricsRegistry reg;
  std::uint64_t hits = 0;
  int depth = 3;
  reg.enroll_counter("cache.hits", &hits);
  reg.enroll_gauge("queue.depth", [&] { return std::int64_t{depth}; });
  reg.enroll_gauge_bool("health.enabled", [] { return true; });

  hits = 7;
  EXPECT_EQ(reg.counter_value("cache.hits"), 7u);
  EXPECT_EQ(reg.gauge_value("queue.depth"), 3);
  EXPECT_EQ(reg.counter_value("no.such"), 0u);
  EXPECT_TRUE(reg.contains("health.enabled"));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, DottedNamesNestIntoSortedObjects) {
  MetricsRegistry reg;
  std::uint64_t b = 2, a = 1, deep = 9;
  reg.enroll_counter("z.b", &b);
  reg.enroll_counter("z.a", &a);
  reg.enroll_counter("a.x.deep", &deep);
  EXPECT_EQ(reg.snapshot_json(),
            "{\n"
            "  \"a\": {\n"
            "    \"x\": {\n"
            "      \"deep\": 9\n"
            "    }\n"
            "  },\n"
            "  \"z\": {\n"
            "    \"a\": 1,\n"
            "    \"b\": 2\n"
            "  }\n"
            "}");
}

TEST(MetricsRegistryTest, UnenrollPrefixRemovesSection) {
  MetricsRegistry reg;
  std::uint64_t x = 1;
  reg.enroll_counter("tenants.alice.submitted", &x);
  reg.enroll_counter("tenants.bob.submitted", &x);
  reg.enroll_counter("network.sent", &x);
  reg.unenroll_prefix("tenants.");
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("network.sent"));
}

TEST(MetricsRegistryTest, SanitizeComponentKeepsDotsOutOfPaths) {
  EXPECT_EQ(MetricsRegistry::sanitize_component("sensor"), "sensor");
  EXPECT_EQ(MetricsRegistry::sanitize_component("192.168.0.90"), "192_168_0_90");
}

TEST(MetricsRegistryTest, ScopedViewPrefixesAndUnenrollsAsAUnit) {
  MetricsRegistry reg;
  std::uint64_t rows0 = 5, rows1 = 9, other = 1;
  reg.enroll_counter("network.sent", &other);

  // The same view schema enrolled twice under indexed namespaces — the
  // shard worker pattern ("shard.<i>.*") — without name collisions.
  MetricsRegistry::Scoped s0 = reg.scoped("shard.0.");
  MetricsRegistry::Scoped s1 = reg.scoped("shard.1.");
  s0.enroll_counter("rows", &rows0);
  s1.enroll_counter("rows", &rows1);
  s0.enroll_gauge("depth", [] { return std::int64_t{3}; });
  EXPECT_EQ(reg.counter_value("shard.0.rows"), 5u);
  EXPECT_EQ(reg.counter_value("shard.1.rows"), 9u);
  EXPECT_EQ(reg.gauge_value("shard.0.depth"), 3);

  // Withdrawing one scope leaves the sibling and everything else intact.
  s0.unenroll_all();
  EXPECT_FALSE(reg.contains("shard.0.rows"));
  EXPECT_FALSE(reg.contains("shard.0.depth"));
  EXPECT_TRUE(reg.contains("shard.1.rows"));
  EXPECT_TRUE(reg.contains("network.sent"));

  // A default-constructed scope is a null-safe no-op enrollment path.
  MetricsRegistry::Scoped dead;
  EXPECT_FALSE(dead.live());
  dead.enroll_counter("rows", &rows0);
  dead.unenroll_all();
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, HistogramRendersInline) {
  MetricsRegistry reg;
  LatencyHistogram h;
  h.add(100.0);
  reg.enroll_histogram("svc.latency_ms", &h);
  EXPECT_NE(reg.snapshot_json().find("\"count\": 1"), std::string::npos);
  EXPECT_NE(reg.snapshot_json(true).find("\"buckets\""), std::string::npos);
}

// ----------------------------------------------------------------- Tracer

TimePoint at_us(std::int64_t us) { return TimePoint::from_micros(us); }

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer t(8);
  t.record(SpanCat::kSweep, "sweep", at_us(0), at_us(10));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(TracerTest, RingWrapsKeepingNewestOldestFirst) {
  Tracer t(4);
  t.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    t.record(SpanCat::kRpc, "rpc" + std::to_string(i), at_us(i * 10),
             at_us(i * 10 + 5));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
  std::vector<Span> spans = t.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "rpc2");
  EXPECT_EQ(spans.back().name, "rpc5");
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(TracerTest, ChromeJsonHasMetadataAndCompleteEvents) {
  Tracer t(8);
  t.set_enabled(true);
  t.record(SpanCat::kSweep, "sweep:sensor", at_us(1000), at_us(3500),
           "2 device(s)");
  t.instant(SpanCat::kEval, "eval:watch", at_us(3500));
  std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Thread metadata names the per-category tracks.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep\""), std::string::npos);
  // The complete event carries virtual-clock ts/dur in microseconds.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2500"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"eval:watch\""), std::string::npos);
}

TEST(TracerTest, SpanCatNamesCoverTaxonomy) {
  EXPECT_EQ(obs::span_cat_name(SpanCat::kParse), "parse");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kRegister), "register");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kSweep), "sweep");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kRpc), "rpc");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kEval), "eval");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kAction), "action");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kDelivery), "delivery");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kEpoch), "epoch");
  EXPECT_EQ(obs::span_cat_name(SpanCat::kHealth), "health");
}

}  // namespace
}  // namespace aorta
