// Tests for action failover (retry on remaining candidates) and multi-hop
// cost-aware device selection.
#include <gtest/gtest.h>

#include "core/aorta.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;
using util::TimePoint;

struct FailoverFixture : public ::testing::Test {
  void build(int max_retries) {
    core::Config config;
    config.seed = 13;
    config.max_retries = max_retries;
    sys = std::make_unique<core::Aorta>(config);
    // cam_bad is perfectly aimed at the target (cheapest) but always
    // fails; cam_good needs a big sweep but works.
    ASSERT_TRUE(
        sys->add_camera("cam_bad", "10.0.0.1", {{0, 0, 3}, 0.0}).is_ok());
    ASSERT_TRUE(
        sys->add_camera("cam_good", "10.0.0.2", {{0, 0, 3}, 150.0}).is_ok());
    sys->camera("cam_bad")->reliability().glitch_prob = 1.0;
    sys->camera("cam_bad")->set_fatigue_coeff(0.0);
    sys->camera("cam_good")->reliability().glitch_prob = 0.0;
    sys->camera("cam_good")->set_fatigue_coeff(0.0);

    ASSERT_TRUE(sys->add_mote("mote1", {5, 0, 1}).is_ok());
    sys->mote("mote1")->reliability().glitch_prob = 0.0;
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    ASSERT_TRUE(sys->network().set_link("mote1", link).is_ok());
    auto script = std::make_unique<devices::ScriptedSignal>(0.0);
    script->add_spike(TimePoint::from_micros(10'000'000), Duration::seconds(2),
                      900.0);
    (void)sys->mote("mote1")->set_signal("accel_x", std::move(script));

    ASSERT_TRUE(sys->exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                          "FROM sensor s, camera c "
                          "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                    .is_ok());
  }

  std::unique_ptr<core::Aorta> sys;
};

TEST_F(FailoverFixture, FailedActionRetriesOnNextCandidate) {
  build(/*max_retries=*/1);
  sys->run_for(Duration::seconds(60));

  auto as = sys->action_stats("q");
  EXPECT_EQ(as.usable, 1u);
  EXPECT_EQ(as.failed, 0u);
  // The cheapest camera was tried first and failed; the retry landed on
  // the working one.
  EXPECT_EQ(sys->camera("cam_bad")->camera_stats().photos_failed, 1u);
  EXPECT_EQ(sys->camera("cam_good")->camera_stats().photos_ok, 1u);
  ASSERT_EQ(sys->executor().operators().size(), 1u);
  EXPECT_EQ(sys->executor().operators()[0]->stats().retries, 1u);
}

TEST_F(FailoverFixture, NoRetriesMeansFailureSticks) {
  build(/*max_retries=*/0);
  sys->run_for(Duration::seconds(60));

  auto as = sys->action_stats("q");
  EXPECT_EQ(as.usable, 0u);
  EXPECT_EQ(as.failed, 1u);
  EXPECT_EQ(sys->camera("cam_good")->camera_stats().photos_ok, 0u);
  EXPECT_EQ(sys->executor().operators()[0]->stats().retries, 0u);
}

TEST_F(FailoverFixture, RetriesExhaustWhenEverythingFails) {
  build(/*max_retries=*/3);
  sys->camera("cam_good")->reliability().glitch_prob = 1.0;  // both broken
  sys->run_for(Duration::seconds(60));

  auto as = sys->action_stats("q");
  EXPECT_EQ(as.usable, 0u);
  EXPECT_EQ(as.failed, 1u);  // reported once, after retries ran out
  // One retry happened (to the second camera); after that no candidates
  // remained, so the failure was final.
  EXPECT_EQ(sys->executor().operators()[0]->stats().retries, 1u);
}

// ------------------------------------------------- multi-hop device choice

TEST(MultiHopSelectionTest, DeviceSelectionPrefersShallowMotes) {
  core::Config config;
  config.seed = 19;
  core::Aorta sys(config);

  // The event mote, plus two actuator motes both within range: one 1 hop
  // deep, one 5 hops deep. beep()'s hop-aware cost model should route the
  // actuation to the shallow mote.
  ASSERT_TRUE(sys.add_mote("trigger", {0, 0, 1}).is_ok());
  ASSERT_TRUE(sys.add_mote("shallow", {1, 0, 1}, /*hops=*/1).is_ok());
  ASSERT_TRUE(sys.add_mote("deep", {0, 1, 1}, /*hops=*/5).is_ok());
  for (const char* id : {"trigger", "shallow", "deep"}) {
    sys.mote(id)->reliability().glitch_prob = 0.0;
    auto link = devices::Mica2Mote::link_for_hops(id == std::string("deep") ? 5 : 1);
    link.loss_prob = 0.0;
    ASSERT_TRUE(sys.network().set_link(id, link).is_ok());
  }
  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(TimePoint::from_micros(10'000'000), Duration::seconds(2),
                    900.0);
  (void)sys.mote("trigger")->set_signal("accel_x", std::move(script));

  // Sound an alarm on some nearby mote when the trigger senses movement.
  ASSERT_TRUE(sys.exec("CREATE AQ alarm AS SELECT beep(m.id) "
                       "FROM sensor s, sensor m "
                       "WHERE s.id = 'trigger' AND s.accel_x > 500 "
                       "AND distance(m.loc, s.loc) < 3 AND m.id <> 'trigger'")
                  .is_ok());
  sys.run_for(Duration::seconds(60));

  EXPECT_EQ(sys.action_stats("alarm").usable, 1u);
  EXPECT_EQ(sys.mote("shallow")->beeps(), 1u);  // picked over the deep one
  EXPECT_EQ(sys.mote("deep")->beeps(), 0u);
}

}  // namespace
}  // namespace aorta
