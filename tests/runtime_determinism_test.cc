// The parallel runtime must not cost determinism: a fixed-seed run of a
// sharded workload produces byte-identical delivered events, metrics JSON
// and merged trace exports whether the per-shard loops are stepped by 1, 2
// or 8 OS threads. The epoch-barrier schedule is derived from virtual time
// only (window = min(barrier, earliest event + quantum)), cross-loop
// deliveries flush in (timestamp, source loop, sequence) order, and every
// wall-clock-dependent gauge (thread count, barrier stall histograms) is
// marked volatile and excluded from the deterministic snapshot — so the
// thread count can change nothing observable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "core/aorta.h"
#include "server/service.h"
#include "server/session.h"
#include "shard/plane.h"

namespace aorta {
namespace {

using server::Delivery;
using server::QueryService;
using server::ServiceConfig;
using server::SessionId;
using shard::Plane;
using util::Duration;
using util::TimePoint;

std::string value_key(const device::Value& v) {
  char buf[96];
  if (std::holds_alternative<std::monostate>(v)) return "null";
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  const auto& loc = std::get<device::Location>(v);
  std::snprintf(buf, sizeof(buf), "(%.17g,%.17g,%.17g)", loc.x, loc.y, loc.z);
  return buf;
}

// Unlike the shard-equivalence test this key carries the *exact* delivery
// microsecond: same seed + same shard count must mean the same virtual
// instants, independent of the thread count.
std::string event_key(const Delivery& d) {
  std::string key = d.query;
  key += "@" + std::to_string(d.at.to_micros());
  for (const query::Row& row : d.rows) {
    for (const auto& [name, value] : row) {
      key += "|" + name + "=" + value_key(value);
    }
  }
  key += d.degraded ? "|degraded" : "";
  return key;
}

struct RunOutput {
  std::vector<std::string> events;  // delivered rows, in delivery order
  std::string stats_json;
  std::string metrics_json;
  std::string trace_json;
};

RunOutput run_workload(int runtime_threads, std::uint64_t seed,
                       const std::string& fault_plan_xml = "") {
  core::Config config;
  config.seed = seed;
  config.tracing = true;
  config.runtime_threads = runtime_threads;
  core::Aorta sys(config);
  ServiceConfig cfg;
  cfg.num_shards = 8;
  cfg.mailbox_capacity = 1 << 20;
  QueryService service(&sys, cfg);

  for (int i = 0; i < 12; ++i) {
    std::string id = "m" + std::to_string(i);
    EXPECT_TRUE(service.plane()->add_mote(id, {double(i), 0, 1}).is_ok());
    devices::Mica2Mote* mote = service.plane()->mote(id);
    mote->reliability().glitch_prob = 0.0;
    (void)mote->set_signal("temp", devices::constant_signal(15.0 + i));
    (void)mote->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 900.0, Duration::seconds(3.0),
                                       Duration::seconds(1.0),
                                       Duration::seconds(0.25 * i)));
    (void)sys.network().set_link(id, Plane::backplane());
  }

  SessionId id = service.connect("acme");
  for (int k = 0; k < 8; ++k) {
    std::string sql = "CREATE AQ temp" + std::to_string(k) +
                      " AS SELECT s.temp FROM sensor s WHERE s.temp > " +
                      std::to_string(12 + 2 * k);
    EXPECT_TRUE(service.submit(id, sql).is_ok()) << sql;
  }
  for (int k = 0; k < 8; ++k) {
    std::string sql = "CREATE AQ spike" + std::to_string(k) +
                      " AS SELECT s.accel_x, s.temp FROM sensor s "
                      "WHERE s.accel_x > " +
                      std::to_string(100 + 100 * k);
    EXPECT_TRUE(service.submit(id, sql).is_ok()) << sql;
  }
  if (!fault_plan_xml.empty()) {
    auto plan = util::FaultPlan::from_xml(fault_plan_xml);
    EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
    EXPECT_TRUE(service.plane()->apply_fault_plan(plan.value()).is_ok());
  }
  sys.run_for(Duration::seconds(10.0));

  RunOutput out;
  for (const Delivery& d : service.session(id)->drain()) {
    EXPECT_NE(d.kind, Delivery::Kind::kError) << d.message;
    if (d.kind != Delivery::Kind::kRow) continue;
    out.events.push_back(event_key(d));
  }
  out.stats_json = service.stats_json();
  out.metrics_json = sys.metrics().snapshot_json();
  out.trace_json = sys.trace_json();
  return out;
}

TEST(RuntimeDeterminismTest, SameSeedIsByteIdenticalAcrossThreadCounts) {
  RunOutput one = run_workload(1, 42);
  RunOutput two = run_workload(2, 42);
  RunOutput eight = run_workload(8, 42);

  ASSERT_FALSE(one.events.empty());
  EXPECT_EQ(one.events, two.events);
  EXPECT_EQ(one.events, eight.events);
  EXPECT_EQ(one.stats_json, two.stats_json);
  EXPECT_EQ(one.stats_json, eight.stats_json);
  EXPECT_EQ(one.metrics_json, two.metrics_json);
  EXPECT_EQ(one.metrics_json, eight.metrics_json);
  EXPECT_EQ(one.trace_json, two.trace_json);
  EXPECT_EQ(one.trace_json, eight.trace_json);
}

TEST(RuntimeDeterminismTest, BackplaneStormIsByteIdenticalAcrossThreadCounts) {
  // The retry/ack/replay machinery (DESIGN.md §14) is itself part of the
  // deterministic surface: a backplane storm — loss on two worker links,
  // duplication into the czar, reordering and fixed delay — must replay
  // byte-identically at any thread count. Chaos perturbations draw from
  // the network's isolated chaos RNG and retry jitter from ReliableCall's
  // constant-derived stream, so no main-stream draw ever shifts.
  const std::string storm =
      "<fault_plan>"
      "<event at=\"3\" kind=\"loss\" device=\"shard-0\" prob=\"0.1\""
      " for=\"4\"/>"
      "<event at=\"3\" kind=\"duplicate\" device=\"czar\" factor=\"1.5\""
      " for=\"4\"/>"
      "<event at=\"3\" kind=\"reorder\" device=\"shard-1\" prob=\"0.3\""
      " window=\"0.004\" for=\"4\"/>"
      "<event at=\"3\" kind=\"delay\" device=\"czar\" add=\"0.002\""
      " for=\"4\"/>"
      "</fault_plan>";
  RunOutput one = run_workload(1, 42, storm);
  RunOutput two = run_workload(2, 42, storm);
  RunOutput eight = run_workload(8, 42, storm);

  ASSERT_FALSE(one.events.empty());
  EXPECT_EQ(one.events, two.events);
  EXPECT_EQ(one.events, eight.events);
  EXPECT_EQ(one.stats_json, two.stats_json);
  EXPECT_EQ(one.stats_json, eight.stats_json);
  EXPECT_EQ(one.metrics_json, two.metrics_json);
  EXPECT_EQ(one.metrics_json, eight.metrics_json);
  EXPECT_EQ(one.trace_json, two.trace_json);
  EXPECT_EQ(one.trace_json, eight.trace_json);
}

TEST(RuntimeDeterminismTest, RepeatedThreadedRunsAreByteIdentical) {
  // Two 8-thread runs of the same seed: any racy interleaving that leaked
  // into delivery order, metrics or traces would show up here.
  RunOutput a = run_workload(8, 7);
  RunOutput b = run_workload(8, 7);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  ASSERT_FALSE(a.events.empty());
}

TEST(RuntimeDeterminismTest, RuntimeMetricsAreEnrolledPerLoop) {
  core::Config config;
  config.runtime_threads = 2;
  core::Aorta sys(config);
  ServiceConfig cfg;
  cfg.num_shards = 2;
  QueryService service(&sys, cfg);
  ASSERT_TRUE(service.plane()->add_mote("m0", {0, 0, 1}).is_ok());
  SessionId id = service.connect("acme");
  ASSERT_TRUE(
      service.submit(id, "CREATE AQ t AS SELECT s.temp FROM sensor s").is_ok());
  sys.run_for(Duration::seconds(3.0));

  // Loops 0 (control), 1 and 2 (workers) each expose barrier/queue stats.
  const std::string full = sys.metrics().snapshot_json(false, true);
  const std::string deterministic = sys.metrics().snapshot_json();
  for (int i = 0; i < 3; ++i) {
    std::string prefix = "runtime." + std::to_string(i) + ".";
    EXPECT_TRUE(sys.metrics().contains(prefix + "barrier_waits")) << prefix;
    EXPECT_TRUE(sys.metrics().contains(prefix + "queue_depth")) << prefix;
    // The volatile stall histogram is excluded from the deterministic
    // snapshot but present in the full export.
    EXPECT_NE(full.find("barrier_stall_ms"), std::string::npos);
    EXPECT_EQ(deterministic.find("barrier_stall_ms"), std::string::npos);
  }
  EXPECT_GT(sys.metrics().gauge_value("runtime.windows"), 0);
  EXPECT_EQ(sys.metrics().gauge_value("runtime.loops"), 3);
  // Cross-loop traffic flowed over the fabric during the run.
  EXPECT_GT(sys.metrics().counter_value("network.cross_sent"), 0u);
}

}  // namespace
}  // namespace aorta
