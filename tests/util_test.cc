// Unit tests for the utility substrate: Status/Result, time, the event
// loop, RNG, statistics and string helpers.
#include <gtest/gtest.h>

#include "util/event_loop.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/time.h"

namespace aorta::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = timeout_error("probe to cam1 timed out");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.to_string(), "TIMEOUT: probe to cam1 timed out");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  EXPECT_EQ(unavailable_error("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(busy_error("").code(), StatusCode::kBusy);
  EXPECT_EQ(action_failed_error("").code(), StatusCode::kActionFailed);
  EXPECT_EQ(invalid_argument_error("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(not_found_error("").code(), StatusCode::kNotFound);
  EXPECT_EQ(already_exists_error("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(parse_error("").code(), StatusCode::kParseError);
  EXPECT_EQ(internal_error("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(not_found_error("nope"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r{Status::ok()};
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

// ------------------------------------------------------------------ time

TEST(TimeTest, DurationConversions) {
  EXPECT_EQ(Duration::seconds(1.5).to_micros(), 1'500'000);
  EXPECT_EQ(Duration::millis(20).to_micros(), 20'000);
  EXPECT_EQ(Duration::minutes(2).to_micros(), 120'000'000);
  EXPECT_DOUBLE_EQ(Duration::micros(250).to_seconds(), 2.5e-4);
}

TEST(TimeTest, DurationArithmeticAndComparison) {
  Duration a = Duration::seconds(1), b = Duration::millis(500);
  EXPECT_EQ((a + b).to_micros(), 1'500'000);
  EXPECT_EQ((a - b).to_micros(), 500'000);
  EXPECT_EQ((b * 3.0).to_micros(), 1'500'000);
  EXPECT_LT(b, a);
  a += b;
  EXPECT_EQ(a.to_micros(), 1'500'000);
}

TEST(TimeTest, TimePointArithmetic) {
  TimePoint t0 = TimePoint::origin();
  TimePoint t1 = t0 + Duration::seconds(3);
  EXPECT_EQ((t1 - t0).to_seconds(), 3.0);
  EXPECT_GT(t1, t0);
}

TEST(TimeTest, DurationToString) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::millis(15).to_string(), "15ms");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), TimePoint::origin());
  clock.advance_to(TimePoint::from_micros(100));
  EXPECT_EQ(clock.now().to_micros(), 100);
}

// ------------------------------------------------------------- EventLoop

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  SimClock clock;
  EventLoop loop(&clock);
  std::vector<int> order;
  loop.schedule(Duration::millis(30), [&]() { order.push_back(3); });
  loop.schedule(Duration::millis(10), [&]() { order.push_back(1); });
  loop.schedule(Duration::millis(20), [&]() { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now().to_micros(), 30'000);
}

TEST(EventLoopTest, EqualTimesFireInSubmissionOrder) {
  SimClock clock;
  EventLoop loop(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(Duration::millis(5), [&order, i]() { order.push_back(i); });
  }
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  SimClock clock;
  EventLoop loop(&clock);
  int fired = 0;
  loop.schedule(Duration::millis(10), [&]() { ++fired; });
  loop.schedule(Duration::millis(50), [&]() { ++fired; });
  loop.run_until(TimePoint::origin() + Duration::millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now().to_micros(), 20'000);  // advanced to the boundary
  loop.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  SimClock clock;
  EventLoop loop(&clock);
  int fired = 0;
  EventId id = loop.schedule(Duration::millis(10), [&]() { ++fired; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // double-cancel reports failure
  loop.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, CancelUnknownIdFails) {
  SimClock clock;
  EventLoop loop(&clock);
  EXPECT_FALSE(loop.cancel(0));
  EXPECT_FALSE(loop.cancel(12345));
}

TEST(EventLoopTest, EventsMayScheduleMoreEvents) {
  SimClock clock;
  EventLoop loop(&clock);
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) loop.schedule(Duration::millis(1), recurse);
  };
  loop.schedule(Duration::millis(1), recurse);
  loop.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(clock.now().to_micros(), 5'000);
}

TEST(EventLoopTest, PendingAndExecutedCounters) {
  SimClock clock;
  EventLoop loop(&clock);
  loop.schedule(Duration::millis(1), []() {});
  EventId id = loop.schedule(Duration::millis(2), []() {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_all();
  EXPECT_EQ(loop.executed(), 1u);
}

TEST(EventLoopTest, HeavyCancellationCompactsTombstones) {
  SimClock clock;
  EventLoop loop(&clock);
  // A timeout-heavy workload: most scheduled events are cancelled before
  // they fire. Without compaction the heap would keep every tombstoned
  // entry until its timestamp came due.
  std::vector<int> fired;
  std::vector<EventId> doomed;
  for (int i = 0; i < 1000; ++i) {
    EventId id = loop.schedule(Duration::millis(10 + i),
                               [&fired, i]() { fired.push_back(i); });
    if (i % 10 != 0) doomed.push_back(id);  // keep every 10th
  }
  for (EventId id : doomed) EXPECT_TRUE(loop.cancel(id));
  // Tombstones may never exceed half the heap (pending + tombstones): the
  // cancel path compacts, so they can never outnumber the live events.
  EXPECT_GE(loop.compactions(), 1u);
  EXPECT_LE(loop.tombstones(), loop.pending());
  EXPECT_EQ(loop.pending(), 100u);

  // Survivors still fire, in time order, exactly once.
  loop.run_all();
  ASSERT_EQ(fired.size(), 100u);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(fired[static_cast<size_t>(k)], 10 * k);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.tombstones(), 0u);
}

TEST(EventLoopTest, CancelAfterCompactionStillReturnsFalseForFiredEvents) {
  SimClock clock;
  EventLoop loop(&clock);
  EventId early = loop.schedule(Duration::millis(1), []() {});
  std::vector<EventId> doomed;
  for (int i = 0; i < 64; ++i) {
    doomed.push_back(loop.schedule(Duration::millis(100 + i), []() {}));
  }
  loop.run_for(Duration::millis(2));  // `early` fires
  for (EventId id : doomed) EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(early));           // already fired
  EXPECT_FALSE(loop.cancel(doomed.front()));  // already cancelled
  loop.run_all();
  EXPECT_EQ(loop.executed(), 1u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
    std::int64_t k = rng.uniform_int(2, 9);
    EXPECT_GE(k, 2);
    EXPECT_LE(k, 9);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.fork();
  // The child stream must not simply replay the parent.
  bool any_different = false;
  Rng b(7);
  Rng child2 = b.fork();
  for (int i = 0; i < 10; ++i) {
    double x = child.uniform(0, 1);
    EXPECT_DOUBLE_EQ(x, child2.uniform(0, 1));  // fork is deterministic
    if (x != a.uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, IndexCoversAllSlots) {
  Rng rng(3);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 400; ++i) ++hits[rng.index(4)];
  for (int count : hits) EXPECT_GT(count, 0);
}

// ----------------------------------------------------------------- stats

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(SummaryTest, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SummaryTest, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(3.9);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_FALSE(h.render().empty());
}

// ---------------------------------------------------------------- strings

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(to_lower("SeLeCt"), "select");
  EXPECT_TRUE(iequals("WHERE", "where"));
  EXPECT_FALSE(iequals("WHERE", "wher"));
  EXPECT_TRUE(starts_with("status.pan", "status."));
  EXPECT_FALSE(starts_with("pan", "status."));
}

TEST(StringsTest, FormatAndJoin) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace aorta::util
