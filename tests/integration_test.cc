// Integration tests: the full Aorta stack through the public facade —
// declarative interface -> compilation -> epoch evaluation -> event
// detection -> shared action operators -> probing -> scheduling -> locked
// execution on simulated devices.
#include <gtest/gtest.h>

#include "core/aorta.h"
#include "util/strings.h"

namespace aorta {
namespace {

using util::Duration;
using util::TimePoint;

// A lab with two cameras and one scripted mote.
struct AortaFixture : public ::testing::Test {
  void build(core::Config config) {
    sys = std::make_unique<core::Aorta>(config);
    ASSERT_TRUE(
        sys->add_camera("cam1", "10.0.0.1", {{0, 0, 3}, 0.0}).is_ok());
    ASSERT_TRUE(
        sys->add_camera("cam2", "10.0.0.2", {{10, 8, 3}, 180.0}).is_ok());
    ASSERT_TRUE(sys->add_mote("mote1", {4, 2, 1}).is_ok());
    // Make unit-test behaviour deterministic where the experiment knobs
    // don't matter: reliable cameras, reliable mote radio.
    for (const char* cam : {"cam1", "cam2"}) {
      sys->camera(cam)->reliability().glitch_prob = 0.0;
      sys->camera(cam)->set_fatigue_coeff(0.0);
    }
    sys->mote("mote1")->reliability().glitch_prob = 0.0;
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    ASSERT_TRUE(sys->network().set_link("mote1", link).is_ok());
  }

  void spike_at(double t_s, double value = 800.0, double width_s = 2.0) {
    auto* signal =
        dynamic_cast<devices::ScriptedSignal*>(sys->mote("mote1")->signal("accel_x"));
    if (signal == nullptr) {
      auto script = std::make_unique<devices::ScriptedSignal>(0.0);
      signal = script.get();
      (void)sys->mote("mote1")->set_signal("accel_x", std::move(script));
    }
    signal->add_spike(TimePoint::from_micros(static_cast<std::int64_t>(t_s * 1e6)),
                      Duration::seconds(width_s), value);
  }

  std::unique_ptr<core::Aorta> sys;
};

TEST_F(AortaFixture, SnapshotQueryEndToEnd) {
  build(core::Config{});
  spike_at(20.0);
  spike_at(80.0);

  auto r = sys->exec(
      "CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, 'photos/admin') "
      "FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();

  sys->run_for(Duration::minutes(2));

  const query::QueryStats* qs = sys->query_stats("snapshot");
  ASSERT_NE(qs, nullptr);
  EXPECT_EQ(qs->events, 2u);
  query::QueryActionStats as = sys->action_stats("snapshot");
  EXPECT_EQ(as.requests, 2u);
  EXPECT_EQ(as.usable, 2u);
  EXPECT_EQ(as.total_bad(), 0u);
  // Exactly one camera serviced each event (device selection, not both).
  EXPECT_EQ(sys->camera("cam1")->camera_stats().photos_ok +
                sys->camera("cam2")->camera_stats().photos_ok,
            2u);
  // Locks were used.
  EXPECT_EQ(sys->stats().locks.acquisitions, 2u);
}

TEST_F(AortaFixture, EdgeTriggeredEventsFireOncePerSpike) {
  build(core::Config{});
  spike_at(10.0, 800.0, 5.0);  // 5 s spike sampled by ~5 epochs

  ASSERT_TRUE(sys->exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c "
                        "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys->run_for(Duration::seconds(30));
  // One rising edge despite five above-threshold samples.
  EXPECT_EQ(sys->query_stats("q")->events, 1u);
}

TEST_F(AortaFixture, SharedActionOperatorBatchesAcrossQueries) {
  build(core::Config{});
  ASSERT_TRUE(sys->add_mote("mote2", {6, 5, 1}).is_ok());
  sys->mote("mote2")->reliability().glitch_prob = 0.0;
  auto link = net::LinkModel::mote_radio();
  link.loss_prob = 0.0;
  ASSERT_TRUE(sys->network().set_link("mote2", link).is_ok());

  // Both motes spike simultaneously.
  spike_at(15.0);
  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(TimePoint::from_micros(15'000'000), Duration::seconds(2),
                    900.0);
  (void)sys->mote("mote2")->set_signal("accel_x", std::move(script));

  ASSERT_TRUE(sys->exec("CREATE AQ q1 AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c WHERE s.id = 'mote1' AND "
                        "s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  ASSERT_TRUE(sys->exec("CREATE AQ q2 AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c WHERE s.id = 'mote2' AND "
                        "s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys->run_for(Duration::seconds(60));

  // One shared photo operator batched both queries' requests into a single
  // scheduling round (Section 2.3's action operator sharing).
  auto operators = sys->executor().operators();
  ASSERT_EQ(operators.size(), 1u);
  EXPECT_EQ(operators[0]->stats().batches, 1u);
  EXPECT_EQ(operators[0]->stats().requests, 2u);
  EXPECT_EQ(sys->action_stats("q1").usable, 1u);
  EXPECT_EQ(sys->action_stats("q2").usable, 1u);
}

TEST_F(AortaFixture, ProbingExcludesDeadCameraAndFailsWhenAllDead) {
  build(core::Config{});
  spike_at(10.0);
  spike_at(70.0);

  ASSERT_TRUE(sys->exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c "
                        "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());

  // First event: cam1 dead -> cam2 must take the photo.
  sys->camera("cam1")->set_online(false);
  sys->run_for(Duration::seconds(40));
  EXPECT_EQ(sys->camera("cam2")->camera_stats().photos_ok, 1u);
  EXPECT_EQ(sys->camera("cam1")->camera_stats().photos_ok, 0u);
  EXPECT_GE(sys->stats().probes.timeouts, 1u);

  // Second event: both cameras dead -> no_candidate failure.
  sys->camera("cam2")->set_online(false);
  sys->run_for(Duration::seconds(60));
  query::QueryActionStats as = sys->action_stats("q");
  EXPECT_EQ(as.no_candidate, 1u);
  EXPECT_EQ(as.usable, 1u);
}

TEST_F(AortaFixture, WithoutLocksConcurrentQueriesInterfere) {
  core::Config config;
  config.use_locks = false;
  config.use_probing = false;
  build(config);
  // Five queries fire on the same event and the same single camera
  // (the second camera cannot cover the mote from its position? keep both;
  // interference needs >=2 concurrent on one camera, which 5 requests on 2
  // cameras guarantees).
  spike_at(10.0);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(sys->exec(util::str_format(
                              "CREATE AQ q%d AS SELECT photo(c.ip, s.loc, 'd') "
                              "FROM sensor s, camera c WHERE s.accel_x > 500 "
                              "AND coverage(c.id, s.loc)",
                              i))
                    .is_ok());
  }
  sys->run_for(Duration::seconds(60));

  std::uint64_t usable = 0, bad = 0;
  for (int i = 1; i <= 5; ++i) {
    auto as = sys->action_stats("q" + std::to_string(i));
    usable += as.usable;
    bad += as.total_bad();
  }
  EXPECT_EQ(usable + bad, 5u);
  EXPECT_GT(bad, 0u);  // interference without synchronization
  EXPECT_EQ(sys->stats().locks.acquisitions, 0u);  // locks really off
}

TEST_F(AortaFixture, WithLocksSameWorkloadIsClean) {
  build(core::Config{});
  spike_at(10.0);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(sys->exec(util::str_format(
                              "CREATE AQ q%d AS SELECT photo(c.ip, s.loc, 'd') "
                              "FROM sensor s, camera c WHERE s.accel_x > 500 "
                              "AND coverage(c.id, s.loc)",
                              i))
                    .is_ok());
  }
  sys->run_for(Duration::seconds(60));
  std::uint64_t usable = 0;
  for (int i = 1; i <= 5; ++i) usable += sys->action_stats("q" + std::to_string(i)).usable;
  EXPECT_EQ(usable, 5u);
  EXPECT_GT(sys->stats().locks.acquisitions, 0u);
}

TEST_F(AortaFixture, CreateActionRegistersUserDefinedAction) {
  build(core::Config{});
  ASSERT_TRUE(sys->add_phone("p1", "+85200001111", {50, 50, 0}).is_ok());
  sys->phone("p1")->reliability().glitch_prob = 0.0;
  spike_at(10.0);

  sys->add_virtual_file("profiles/users/sendphoto.xml",
                        "<action_profile action=\"sendphoto2\" "
                        "device_type=\"phone\">"
                        "<seq><op name=\"transfer\" units=\"81920\"/>"
                        "<op name=\"recv_mms\"/></seq></action_profile>");
  auto created = sys->exec(
      "CREATE ACTION sendphoto2(String phone_no, String photo_pathname) "
      "AS \"lib/users/sendphoto.dll\" PROFILE \"profiles/users/sendphoto.xml\"");
  ASSERT_TRUE(created.is_ok()) << created.status().to_string();

  // Missing profile file is a clean error.
  EXPECT_FALSE(sys->exec("CREATE ACTION nope(String a) AS \"l\" "
                         "PROFILE \"missing.xml\"")
                   .is_ok());

  // Bind the implementation and use it from a query.
  ASSERT_TRUE(
      sys->register_action_impl(
             "sendphoto2",
             [this](const device::DeviceId& device,
                    const std::vector<device::Value>& args,
                    std::function<void(util::Result<sched::ActionOutcome>)> done) {
               (void)args;
               sys->comm().phone().send_mms(
                   device, "x.jpg", 1024,
                   [done = std::move(done)](util::Status status) {
                     sched::ActionOutcome out;
                     out.ok = status.is_ok();
                     done(out);
                   });
             })
          .is_ok());
  EXPECT_FALSE(sys->register_action_impl("no_such_action", nullptr).is_ok());

  ASSERT_TRUE(sys->exec("CREATE AQ alert AS SELECT sendphoto2(p.phone_no, 'x.jpg') "
                        "FROM sensor s, phone p WHERE s.accel_x > 500")
                  .is_ok());
  sys->run_for(Duration::seconds(60));
  EXPECT_EQ(sys->action_stats("alert").usable, 1u);
  EXPECT_EQ(sys->phone("p1")->inbox().size(), 1u);
}

TEST_F(AortaFixture, BindingArgumentInstantiatedPerSelectedDevice) {
  build(core::Config{});
  ASSERT_TRUE(sys->add_phone("p1", "+85200009999", {40, 40, 0}).is_ok());
  sys->phone("p1")->reliability().glitch_prob = 0.0;
  spike_at(10.0);

  sys->add_virtual_file("profiles/echo.xml",
                        "<action_profile action=\"echo_no\" "
                        "device_type=\"phone\"><op name=\"recv_sms\"/>"
                        "</action_profile>");
  ASSERT_TRUE(sys->exec("CREATE ACTION echo_no(String phone_no) "
                        "AS \"lib/echo.dll\" PROFILE \"profiles/echo.xml\"")
                  .is_ok());

  std::vector<device::Value> seen_args;
  ASSERT_TRUE(sys->register_action_impl(
                     "echo_no",
                     [&seen_args](const device::DeviceId&,
                                  const std::vector<device::Value>& args,
                                  std::function<void(
                                      util::Result<sched::ActionOutcome>)>
                                      done) {
                       seen_args = args;
                       sched::ActionOutcome out;
                       out.ok = true;
                       done(out);
                     })
                  .is_ok());
  ASSERT_TRUE(sys->exec("CREATE AQ alert AS SELECT echo_no(p.phone_no) "
                        "FROM sensor s, phone p WHERE s.accel_x > 500")
                  .is_ok());
  sys->run_for(Duration::seconds(60));

  // The binding argument carries the selected phone's number, not NULL.
  ASSERT_EQ(seen_args.size(), 1u);
  EXPECT_TRUE(device::value_equal(seen_args[0],
                                  device::Value{std::string("+85200009999")}));
}

TEST_F(AortaFixture, DropAqStopsEvaluation) {
  build(core::Config{});
  spike_at(10.0);
  spike_at(40.0);
  ASSERT_TRUE(sys->exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c "
                        "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys->run_for(Duration::seconds(20));
  EXPECT_EQ(sys->query_stats("q")->events, 1u);
  ASSERT_TRUE(sys->exec("DROP AQ q").is_ok());
  EXPECT_FALSE(sys->exec("DROP AQ q").is_ok());
  sys->run_for(Duration::seconds(60));
  EXPECT_EQ(sys->query_stats("q"), nullptr);  // gone, second spike ignored
}

TEST_F(AortaFixture, EveryClauseSlowsEvaluation) {
  build(core::Config{});
  ASSERT_TRUE(sys->exec("CREATE AQ slow EVERY 10 AS "
                        "SELECT s.id FROM sensor s WHERE s.accel_x > 500")
                  .is_ok());
  ASSERT_TRUE(sys->exec("CREATE AQ fast AS "
                        "SELECT s.id FROM sensor s WHERE s.accel_x > 500")
                  .is_ok());
  sys->run_for(Duration::seconds(60));
  const query::QueryStats* slow = sys->query_stats("slow");
  const query::QueryStats* fast = sys->query_stats("fast");
  ASSERT_NE(slow, nullptr);
  ASSERT_NE(fast, nullptr);
  EXPECT_NEAR(static_cast<double>(slow->epochs), 6.0, 1.0);
  EXPECT_NEAR(static_cast<double>(fast->epochs), 60.0, 1.0);
}

TEST_F(AortaFixture, OneShotSelectJoinsStaticTables) {
  build(core::Config{});
  auto rows = sys->exec(
      "SELECT s.id, c.ip FROM sensor s, camera c WHERE coverage(c.id, s.loc)");
  ASSERT_TRUE(rows.is_ok()) << rows.status().to_string();
  // mote1 is covered by both cameras from their poses.
  EXPECT_EQ(rows->rows.size(), 2u);
}

TEST_F(AortaFixture, DuplicateAqNameRejected) {
  build(core::Config{});
  ASSERT_TRUE(
      sys->exec("CREATE AQ q AS SELECT s.id FROM sensor s WHERE s.accel_x > 1")
          .is_ok());
  EXPECT_FALSE(
      sys->exec("CREATE AQ q AS SELECT s.id FROM sensor s WHERE s.accel_x > 1")
          .is_ok());
}

TEST_F(AortaFixture, StatementErrorsSurfaceCleanly) {
  build(core::Config{});
  EXPECT_FALSE(sys->exec("GIBBERISH").is_ok());
  EXPECT_FALSE(sys->exec("CREATE AQ bad AS SELECT photo(c.ip) "
                         "FROM sensor s, camera c WHERE s.accel_x > 1")
                   .is_ok());
  EXPECT_FALSE(sys->exec("SELECT x FROM warp_core").is_ok());
}

TEST_F(AortaFixture, SchedulerConfigSelectsAlgorithm) {
  core::Config config;
  config.scheduler = "LERFA+SRFE";
  build(config);
  EXPECT_EQ(sys->executor().scheduler()->name(), "LERFA+SRFE");
  // Unknown scheduler falls back rather than crashing.
  core::Config bad;
  bad.scheduler = "QUANTUM";
  core::Aorta fallback(bad);
  EXPECT_EQ(fallback.executor().scheduler()->name(), "SRFAE");
}

TEST_F(AortaFixture, OverlappingBatchesSerializeOnDeviceLocks) {
  build(core::Config{});
  // One camera; two motes at far-apart bearings spiking alternately every
  // 2 s. Each photo needs a long head sweep (~2.7 s), so a new batch
  // arrives while the previous photo still holds the camera lock —
  // overlapping batches must queue, not interfere.
  ASSERT_TRUE(sys->remove_device("cam2").is_ok());
  ASSERT_TRUE(sys->add_mote("mote2", {-4.7, 1.7, 1.0}).is_ok());  // ~160 deg
  sys->mote("mote2")->reliability().glitch_prob = 0.0;
  auto link = net::LinkModel::mote_radio();
  link.loss_prob = 0.0;
  ASSERT_TRUE(sys->network().set_link("mote2", link).is_ok());

  // Finite spike scripts (25 alternating events over ~100 s) so the run
  // can fully drain before the books are checked.
  auto script1 = std::make_unique<devices::ScriptedSignal>(0.0);
  auto script2 = std::make_unique<devices::ScriptedSignal>(0.0);
  for (int k = 0; k < 25; ++k) {
    script1->add_spike(TimePoint::from_micros(500'000 + k * 4'000'000),
                       Duration::seconds(1.2), 900.0);
    script2->add_spike(TimePoint::from_micros(2'500'000 + k * 4'000'000),
                       Duration::seconds(1.2), 900.0);
  }
  (void)sys->mote("mote1")->set_signal("accel_x", std::move(script1));
  (void)sys->mote("mote2")->set_signal("accel_x", std::move(script2));
  ASSERT_TRUE(sys->exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c "
                        "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  // 100 s of bursts plus a generous drain window.
  sys->run_for(Duration::seconds(220));

  auto as = sys->action_stats("q");
  EXPECT_GT(as.requests, 20u);
  // Locks prevented interference entirely: nothing degraded.
  EXPECT_EQ(as.degraded, 0u);
  EXPECT_EQ(as.usable + as.failed + as.no_candidate, as.requests);
  // Overlap actually happened: the lock manager saw contention.
  EXPECT_GT(sys->stats().locks.contentions, 0u);
  EXPECT_EQ(sys->stats().locks.acquisitions, sys->stats().locks.releases);
}

TEST_F(AortaFixture, DeviceChurnWhileQueriesRun) {
  build(core::Config{});
  spike_at(10.0);
  spike_at(70.0);
  ASSERT_TRUE(sys->exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                        "FROM sensor s, camera c "
                        "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys->run_for(Duration::seconds(40));
  // A camera leaves the network entirely; a new one joins.
  ASSERT_TRUE(sys->remove_device("cam1").is_ok());
  ASSERT_TRUE(sys->add_camera("cam3", "10.0.0.3", {{5, 5, 3}, 90.0}).is_ok());
  sys->camera("cam3")->reliability().glitch_prob = 0.0;
  sys->camera("cam3")->set_fatigue_coeff(0.0);
  sys->run_for(Duration::seconds(60));
  EXPECT_EQ(sys->action_stats("q").usable, 2u);
}

}  // namespace
}  // namespace aorta
