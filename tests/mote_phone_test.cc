// Tests for the mote and phone simulators and the signal generators.
#include <gtest/gtest.h>

#include "comm/comm_module.h"
#include "devices/mote.h"
#include "devices/phone.h"

namespace aorta {
namespace {

using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------- signals

TEST(SignalTest, ConstantIsConstant) {
  auto sig = devices::constant_signal(42.0);
  EXPECT_DOUBLE_EQ(sig->sample(TimePoint::origin()), 42.0);
  EXPECT_DOUBLE_EQ(sig->sample(TimePoint::from_micros(999'999'999)), 42.0);
}

TEST(SignalTest, SineOscillatesAroundBase) {
  auto sig = devices::sine_signal(100.0, 50.0, 60.0);
  EXPECT_NEAR(sig->sample(TimePoint::origin()), 100.0, 1e-9);
  EXPECT_NEAR(sig->sample(TimePoint::from_micros(15'000'000)), 150.0, 1e-9);
  EXPECT_NEAR(sig->sample(TimePoint::from_micros(45'000'000)), 50.0, 1e-9);
}

TEST(SignalTest, NoisyIsDeterministicPerSeed) {
  auto a = devices::noisy_signal(10.0, 2.0, util::Rng(5));
  auto b = devices::noisy_signal(10.0, 2.0, util::Rng(5));
  for (int i = 0; i < 10; ++i) {
    TimePoint t = TimePoint::from_micros(i);
    EXPECT_DOUBLE_EQ(a->sample(t), b->sample(t));
  }
}

TEST(SignalTest, ScriptedSpikesApplyInsideWindowOnly) {
  devices::ScriptedSignal sig(0.0);
  sig.add_spike(TimePoint::from_micros(10'000'000), Duration::seconds(2), 800.0);
  EXPECT_DOUBLE_EQ(sig.sample(TimePoint::from_micros(9'999'999)), 0.0);
  EXPECT_DOUBLE_EQ(sig.sample(TimePoint::from_micros(10'000'000)), 800.0);
  EXPECT_DOUBLE_EQ(sig.sample(TimePoint::from_micros(11'999'999)), 800.0);
  EXPECT_DOUBLE_EQ(sig.sample(TimePoint::from_micros(12'000'000)), 0.0);
}

TEST(SignalTest, ScriptedLaterEventWinsOnOverlap) {
  devices::ScriptedSignal sig(0.0);
  sig.add_event({TimePoint::from_micros(0), TimePoint::from_micros(10), 1.0});
  sig.add_event({TimePoint::from_micros(5), TimePoint::from_micros(10), 2.0});
  EXPECT_DOUBLE_EQ(sig.sample(TimePoint::from_micros(3)), 1.0);
  EXPECT_DOUBLE_EQ(sig.sample(TimePoint::from_micros(7)), 2.0);
}

TEST(SignalTest, PeriodicSpikeRepeats) {
  auto sig = devices::periodic_spike_signal(0.0, 800.0, Duration::seconds(60),
                                            Duration::seconds(2),
                                            Duration::seconds(10));
  EXPECT_DOUBLE_EQ(sig->sample(TimePoint::from_micros(0)), 0.0);
  EXPECT_DOUBLE_EQ(sig->sample(TimePoint::from_micros(10'500'000)), 800.0);
  EXPECT_DOUBLE_EQ(sig->sample(TimePoint::from_micros(13'000'000)), 0.0);
  EXPECT_DOUBLE_EQ(sig->sample(TimePoint::from_micros(70'500'000)), 800.0);
  // Before the phase, no spike.
  EXPECT_DOUBLE_EQ(sig->sample(TimePoint::from_micros(5'000'000)), 0.0);
}

// ---------------------------------------------------------------- fixture

struct MotePhoneFixture : public ::testing::Test {
  MotePhoneFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)),
        comm(&registry, &network) {
    (void)registry.register_type(devices::sensor_type_info());
    (void)registry.register_type(devices::phone_type_info());
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  comm::CommLayer comm;
};

// ------------------------------------------------------------------ motes

TEST_F(MotePhoneFixture, MoteSamplesItsSignalsAtSimTime) {
  auto mote = std::make_unique<devices::Mica2Mote>("m1", device::Location{});
  devices::Mica2Mote* raw = mote.get();
  raw->reliability().glitch_prob = 0.0;
  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(TimePoint::from_micros(5'000'000), Duration::seconds(1), 700.0);
  (void)raw->set_signal("accel_x", std::move(script));
  ASSERT_TRUE(registry.add(std::move(mote)).is_ok());

  auto before = raw->read_attribute("accel_x");
  ASSERT_TRUE(before.is_ok());
  EXPECT_TRUE(device::value_equal(before.value(), device::Value{0.0}));

  loop.run_until(TimePoint::from_micros(5'500'000));
  auto during = raw->read_attribute("accel_x");
  ASSERT_TRUE(during.is_ok());
  EXPECT_TRUE(device::value_equal(during.value(), device::Value{700.0}));
}

TEST_F(MotePhoneFixture, SetSignalRejectsUnknownAttribute) {
  devices::Mica2Mote mote("m1", device::Location{});
  EXPECT_FALSE(mote.set_signal("pressure", devices::constant_signal(1)).is_ok());
  EXPECT_TRUE(mote.set_signal("light", devices::constant_signal(1)).is_ok());
  EXPECT_NE(mote.signal("light"), nullptr);
  EXPECT_EQ(mote.signal("pressure"), nullptr);
}

TEST_F(MotePhoneFixture, BeepAndBlinkActuateAndDrainBattery) {
  auto mote = std::make_unique<devices::Mica2Mote>("m1", device::Location{});
  devices::Mica2Mote* raw = mote.get();
  raw->reliability().glitch_prob = 0.0;
  ASSERT_TRUE(registry.add(std::move(mote)).is_ok());
  ASSERT_TRUE(network.set_link("m1", net::LinkModel::perfect()).is_ok());

  int acks = 0;
  comm.mote().beep("m1", [&](util::Status s) {
    EXPECT_TRUE(s.is_ok());
    ++acks;
  });
  loop.run_all();
  comm.mote().blink("m1", [&](util::Status s) {
    EXPECT_TRUE(s.is_ok());
    ++acks;
  });
  loop.run_all();
  EXPECT_EQ(acks, 2);
  EXPECT_EQ(raw->beeps(), 1u);
  EXPECT_EQ(raw->blinks(), 1u);
  auto battery = raw->read_attribute("battery_v");
  ASSERT_TRUE(battery.is_ok());
  double v = 0;
  ASSERT_TRUE(device::value_as_double(battery.value(), &v));
  EXPECT_LT(v, 3.0);
}

TEST_F(MotePhoneFixture, UnknownMoteOpGetsErrorReply) {
  auto mote = std::make_unique<devices::Mica2Mote>("m1", device::Location{});
  mote->reliability().glitch_prob = 0.0;
  ASSERT_TRUE(registry.add(std::move(mote)).is_ok());
  (void)network.set_link("m1", net::LinkModel::perfect());

  bool got_error = false;
  comm.mote().request("m1", "fly", {}, Duration::seconds(1),
                      [&](util::Result<net::Message> reply) {
                        ASSERT_TRUE(reply.is_ok());
                        got_error = reply.value().kind == "error";
                      });
  loop.run_all();
  EXPECT_TRUE(got_error);
}

// ----------------------------------------------------------------- phones

TEST_F(MotePhoneFixture, PhoneStoresSmsAndMms) {
  auto phone = std::make_unique<devices::MmsPhone>("p1", "+8520000",
                                                   device::Location{});
  devices::MmsPhone* raw = phone.get();
  raw->reliability().glitch_prob = 0.0;
  ASSERT_TRUE(registry.add(std::move(phone)).is_ok());

  int acks = 0;
  comm.phone().send_sms("p1", "hello", [&](util::Status s) {
    EXPECT_TRUE(s.is_ok());
    ++acks;
  });
  loop.run_all();
  comm.phone().send_mms("p1", "photos/x.jpg", 80 * 1024, [&](util::Status s) {
    EXPECT_TRUE(s.is_ok());
    ++acks;
  });
  loop.run_all();
  EXPECT_EQ(acks, 2);
  ASSERT_EQ(raw->inbox().size(), 2u);
  EXPECT_EQ(raw->inbox()[0].kind, "sms");
  EXPECT_EQ(raw->inbox()[0].body, "hello");
  EXPECT_EQ(raw->inbox()[1].kind, "mms");
  EXPECT_EQ(raw->inbox()[1].bytes, 80u * 1024u);

  auto size = raw->read_attribute("inbox_size");
  ASSERT_TRUE(size.is_ok());
  EXPECT_TRUE(device::value_equal(size.value(), device::Value{std::int64_t{2}}));
}

TEST_F(MotePhoneFixture, OutOfCoveragePhoneTimesOut) {
  auto phone = std::make_unique<devices::MmsPhone>("p1", "+8520000",
                                                   device::Location{});
  ASSERT_TRUE(registry.add(std::move(phone)).is_ok());
  network.partition("p1");  // owner walked out of coverage

  bool timed_out = false;
  comm.phone().send_sms("p1", "anyone there?", [&](util::Status s) {
    timed_out = s.code() == util::StatusCode::kTimeout;
  });
  loop.run_all();
  EXPECT_TRUE(timed_out);

  network.heal("p1");
  bool delivered = false;
  comm.phone().send_sms("p1", "back!", [&](util::Status s) {
    delivered = s.is_ok();
  });
  loop.run_all();
  EXPECT_TRUE(delivered);
}

TEST_F(MotePhoneFixture, PhoneStaticAttrsExposeNumber) {
  devices::MmsPhone phone("p1", "+85291234567", device::Location{1, 1, 0});
  auto attrs = phone.static_attrs();
  EXPECT_TRUE(device::value_equal(attrs.at("phone_no"),
                                  device::Value{std::string("+85291234567")}));
}

TEST(TypeInfoTest, MoteAndPhoneCatalogsDistinguishSensoryAttrs) {
  auto sensor = devices::sensor_type_info();
  EXPECT_TRUE(sensor.catalog.find("accel_x")->sensory);
  EXPECT_FALSE(sensor.catalog.find("loc")->sensory);
  EXPECT_NE(sensor.op_costs.find("beep"), nullptr);

  auto phone = devices::phone_type_info();
  EXPECT_FALSE(phone.catalog.find("phone_no")->sensory);
  EXPECT_TRUE(phone.catalog.find("battery_v")->sensory);
  // The cellular probe timeout is the largest (Section 4's per-type TIMEOUT).
  EXPECT_GT(phone.probe_timeout, sensor.probe_timeout);
}

}  // namespace
}  // namespace aorta
