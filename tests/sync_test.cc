// Tests for device synchronization: the lock manager and the prober.
#include <gtest/gtest.h>

#include "devices/camera.h"
#include "devices/mote.h"
#include "sync/lock_manager.h"
#include "sync/prober.h"

namespace aorta {
namespace {

using util::Duration;

// ------------------------------------------------------------ lock manager

struct LockFixture : public ::testing::Test {
  LockFixture() : loop(&clock), locks(&loop) {}
  util::SimClock clock;
  util::EventLoop loop;
  sync::LockManager locks;
};

TEST_F(LockFixture, TryLockAcquiresAndBlocks) {
  EXPECT_TRUE(locks.try_lock("cam1", "q1"));
  EXPECT_TRUE(locks.is_locked("cam1"));
  ASSERT_NE(locks.holder("cam1"), nullptr);
  EXPECT_EQ(*locks.holder("cam1"), "q1");
  EXPECT_FALSE(locks.try_lock("cam1", "q2"));  // contended
  EXPECT_TRUE(locks.try_lock("cam2", "q2"));   // other device independent
  EXPECT_EQ(locks.stats().contentions, 1u);
}

TEST_F(LockFixture, UnlockEnforcesOwnership) {
  ASSERT_TRUE(locks.try_lock("cam1", "q1"));
  EXPECT_FALSE(locks.unlock("cam1", "q2").is_ok());  // non-holder
  EXPECT_TRUE(locks.unlock("cam1", "q1").is_ok());
  EXPECT_FALSE(locks.unlock("cam1", "q1").is_ok());  // already unlocked
  EXPECT_FALSE(locks.unlock("never-locked", "q1").is_ok());
  EXPECT_FALSE(locks.is_locked("cam1"));
}

TEST_F(LockFixture, QueuedWaitersGrantedInFifoOrder) {
  std::vector<std::string> grants;
  locks.lock("cam1", "a", [&]() { grants.push_back("a"); });
  locks.lock("cam1", "b", [&]() { grants.push_back("b"); });
  locks.lock("cam1", "c", [&]() { grants.push_back("c"); });
  loop.run_all();
  // Only "a" holds it so far.
  EXPECT_EQ(grants, (std::vector<std::string>{"a"}));
  EXPECT_EQ(locks.queue_depth("cam1"), 2u);

  ASSERT_TRUE(locks.unlock("cam1", "a").is_ok());
  loop.run_all();
  EXPECT_EQ(grants, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(locks.unlock("cam1", "b").is_ok());
  loop.run_all();
  EXPECT_EQ(grants, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_TRUE(locks.unlock("cam1", "c").is_ok());
  EXPECT_FALSE(locks.is_locked("cam1"));
  EXPECT_EQ(locks.stats().acquisitions, 3u);
  EXPECT_EQ(locks.stats().releases, 3u);
  EXPECT_EQ(locks.stats().max_queue_depth, 2u);
}

TEST_F(LockFixture, GrantIsAsynchronousNotReentrant) {
  bool granted_inline = false;
  locks.lock("cam1", "a", [&]() {});
  loop.run_all();
  locks.lock("cam1", "b", [&]() { granted_inline = true; });
  ASSERT_TRUE(locks.unlock("cam1", "a").is_ok());
  // Grant happens via the event loop, not inside unlock().
  EXPECT_FALSE(granted_inline);
  loop.run_all();
  EXPECT_TRUE(granted_inline);
}

TEST_F(LockFixture, GuardReleasesOnScopeExit) {
  {
    sync::DeviceLockGuard guard(&locks, "cam1", "q1");
    EXPECT_TRUE(guard.held());
    EXPECT_TRUE(locks.is_locked("cam1"));
    sync::DeviceLockGuard second(&locks, "cam1", "q2");
    EXPECT_FALSE(second.held());
  }
  EXPECT_FALSE(locks.is_locked("cam1"));
}

// ----------------------------------------------------------------- prober

struct ProberFixture : public ::testing::Test {
  ProberFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)),
        comm(&registry, &network),
        prober(&comm, &registry, &loop) {
    (void)registry.register_type(devices::camera_type_info());
    (void)registry.register_type(devices::sensor_type_info());
  }

  devices::PtzCamera* add_camera(const std::string& id) {
    auto camera = std::make_unique<devices::PtzCamera>(
        id, "10.0.0." + id, devices::CameraPose{{0, 0, 3}, 0.0});
    devices::PtzCamera* raw = camera.get();
    EXPECT_TRUE(registry.add(std::move(camera)).is_ok());
    return raw;
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  comm::CommLayer comm;
  sync::Prober prober;
};

TEST_F(ProberFixture, ProbeGathersPhysicalStatusAndRtt) {
  devices::PtzCamera* cam = add_camera("cam1");
  cam->set_head(devices::PtzPosition{42, -10, 3});

  bool done = false;
  prober.probe("cam1", [&](util::Result<sync::ProbeInfo> info) {
    done = true;
    ASSERT_TRUE(info.is_ok());
    EXPECT_EQ(info.value().id, "cam1");
    EXPECT_FALSE(info.value().busy);
    EXPECT_GT(info.value().rtt, Duration::zero());
    EXPECT_DOUBLE_EQ(info.value().status.at("pan"), 42.0);
    EXPECT_DOUBLE_EQ(info.value().status.at("tilt"), -10.0);
  });
  loop.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(prober.stats().responses, 1u);
}

TEST_F(ProberFixture, ProbeTimesOutOnDeadDevice) {
  devices::PtzCamera* cam = add_camera("cam1");
  cam->set_online(false);
  bool failed = false;
  // Offline devices bounce requests at delivery time, so the probe fails
  // with kUnavailable well before the per-type RPC timeout; the prober
  // still accounts the failure under its timeouts counter.
  prober.probe("cam1", [&](util::Result<sync::ProbeInfo> info) {
    failed = info.status().code() == util::StatusCode::kUnavailable;
  });
  loop.run_all();
  EXPECT_TRUE(failed);
  EXPECT_EQ(prober.stats().timeouts, 1u);
  // The bounce arrives faster than the per-type TIMEOUT (camera: 1 s).
  EXPECT_LE(clock.now().to_seconds(), 1.1);
}

TEST_F(ProberFixture, ProbeUnknownDeviceFailsFast) {
  bool failed = false;
  prober.probe("ghost", [&](util::Result<sync::ProbeInfo> info) {
    failed = info.status().code() == util::StatusCode::kNotFound;
  });
  EXPECT_TRUE(failed);  // synchronous: no network involved
}

TEST_F(ProberFixture, ProbeCandidatesExcludesUnresponsive) {
  add_camera("cam1");
  devices::PtzCamera* dead = add_camera("cam2");
  add_camera("cam3");
  dead->set_online(false);

  std::vector<sync::ProbeInfo> alive;
  prober.probe_candidates({"cam1", "cam2", "cam3"},
                          [&](std::vector<sync::ProbeInfo> out) {
                            alive = std::move(out);
                          });
  loop.run_all();
  ASSERT_EQ(alive.size(), 2u);
  // Order follows the input order with the dead device excised.
  EXPECT_EQ(alive[0].id, "cam1");
  EXPECT_EQ(alive[1].id, "cam3");
}

TEST_F(ProberFixture, ProbeCandidatesEmptySetCompletes) {
  bool done = false;
  prober.probe_candidates({}, [&](std::vector<sync::ProbeInfo> out) {
    done = true;
    EXPECT_TRUE(out.empty());
  });
  EXPECT_TRUE(done);
}

TEST_F(ProberFixture, BusyFlagReportedWhileDeviceWorks) {
  add_camera("cam1");
  // Kick off a long photo, then probe mid-flight.
  comm.camera().photo("cam1", devices::PtzPosition{160, 0, 1}, "medium",
                      [](util::Result<comm::PhotoOutcome>) {});
  loop.run_for(Duration::millis(500));
  bool saw_busy = false;
  prober.probe("cam1", [&](util::Result<sync::ProbeInfo> info) {
    ASSERT_TRUE(info.is_ok());
    saw_busy = info.value().busy;
  });
  loop.run_all();
  EXPECT_TRUE(saw_busy);
}

}  // namespace
}  // namespace aorta
