// Tests for the device framework: value types, base Device behaviour
// (probe / read_attr / overload model), and the registry.
#include <gtest/gtest.h>

#include "device/registry.h"
#include "net/rpc.h"
#include "devices/mote.h"

namespace aorta {
namespace {

using device::Location;
using device::Value;
using util::Duration;

// ------------------------------------------------------------ value types

TEST(LocationTest, DistanceAndEquality) {
  Location a{0, 0, 0}, b{3, 4, 0};
  EXPECT_DOUBLE_EQ(a.distance_to(b), 5.0);
  EXPECT_EQ(a, (Location{0, 0, 0}));
  EXPECT_NE(a, b);
}

TEST(LocationTest, ParseAcceptsBothForms) {
  Location loc;
  EXPECT_TRUE(Location::parse("(1, 2.5, -3)", &loc));
  EXPECT_EQ(loc, (Location{1, 2.5, -3}));
  EXPECT_TRUE(Location::parse("4,5,6", &loc));
  EXPECT_EQ(loc, (Location{4, 5, 6}));
  EXPECT_FALSE(Location::parse("1,2", &loc));
  EXPECT_FALSE(Location::parse("a,b,c", &loc));
  EXPECT_FALSE(Location::parse("", &loc));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(device::value_to_string(Value{}), "NULL");
  EXPECT_EQ(device::value_to_string(Value{true}), "TRUE");
  EXPECT_EQ(device::value_to_string(Value{std::int64_t{42}}), "42");
  EXPECT_EQ(device::value_to_string(Value{2.5}), "2.5");
  EXPECT_EQ(device::value_to_string(Value{std::string("x")}), "'x'");
}

TEST(ValueTest, NumericCoercion) {
  double out = 0;
  EXPECT_TRUE(device::value_as_double(Value{std::int64_t{3}}, &out));
  EXPECT_DOUBLE_EQ(out, 3.0);
  EXPECT_TRUE(device::value_as_double(Value{true}, &out));
  EXPECT_DOUBLE_EQ(out, 1.0);
  EXPECT_FALSE(device::value_as_double(Value{std::string("3")}, &out));
  EXPECT_FALSE(device::value_as_double(Value{}, &out));
}

TEST(ValueTest, TruthinessAndEquality) {
  EXPECT_FALSE(device::value_truthy(Value{}));
  EXPECT_FALSE(device::value_truthy(Value{std::int64_t{0}}));
  EXPECT_TRUE(device::value_truthy(Value{0.5}));
  EXPECT_FALSE(device::value_truthy(Value{std::string()}));
  EXPECT_TRUE(device::value_truthy(Value{Location{}}));
  // Cross-type numeric equality.
  EXPECT_TRUE(device::value_equal(Value{std::int64_t{2}}, Value{2.0}));
  EXPECT_FALSE(device::value_equal(Value{std::string("2")}, Value{2.0}));
}

TEST(AttrTypeTest, NamesRoundTrip) {
  for (auto t : {device::AttrType::kBool, device::AttrType::kInt,
                 device::AttrType::kDouble, device::AttrType::kString,
                 device::AttrType::kLocation}) {
    device::AttrType parsed;
    ASSERT_TRUE(device::attr_type_from_name(device::attr_type_name(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  device::AttrType parsed;
  EXPECT_FALSE(device::attr_type_from_name("quaternion", &parsed));
}

// --------------------------------------------------------------- fixture

struct DeviceFixture : public ::testing::Test {
  DeviceFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)) {
    (void)registry.register_type(devices::sensor_type_info());
  }

  // Engine-side endpoint for driving device protocols directly.
  struct Probe : public net::Endpoint {
    explicit Probe(net::Network* network) : rpc(network, "tester") {}
    void on_message(const net::Message& msg) override { rpc.on_reply(msg); }
    net::RpcClient rpc;
  };

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
};

// --------------------------------------------------------------- registry

TEST_F(DeviceFixture, AddLookupRemove) {
  ASSERT_TRUE(registry.add(std::make_unique<devices::Mica2Mote>(
                               "m1", Location{1, 2, 3}))
                  .is_ok());
  EXPECT_EQ(registry.size(), 1u);
  ASSERT_NE(registry.find("m1"), nullptr);
  EXPECT_EQ(registry.find("m1")->type_id(), "sensor");
  EXPECT_TRUE(network.attached("m1"));

  EXPECT_EQ(registry.ids_of_type("sensor"),
            (std::vector<device::DeviceId>{"m1"}));
  EXPECT_TRUE(registry.ids_of_type("camera").empty());

  ASSERT_TRUE(registry.remove("m1").is_ok());
  EXPECT_EQ(registry.find("m1"), nullptr);
  EXPECT_FALSE(network.attached("m1"));
  EXPECT_FALSE(registry.remove("m1").is_ok());
}

TEST_F(DeviceFixture, RejectsDuplicateAndUnknownType) {
  ASSERT_TRUE(
      registry.add(std::make_unique<devices::Mica2Mote>("m1", Location{}))
          .is_ok());
  EXPECT_FALSE(
      registry.add(std::make_unique<devices::Mica2Mote>("m1", Location{}))
          .is_ok());

  // A device whose type was never registered is rejected.
  class AlienDevice : public device::Device {
   public:
    AlienDevice() : Device("alien1", "alien", Location{}) {}
    util::Result<Value> read_attribute(const std::string&) override {
      return Value{};
    }
    std::map<std::string, double> status_snapshot() const override { return {}; }

   protected:
    void handle_op(const net::Message&) override {}
  };
  EXPECT_FALSE(registry.add(std::make_unique<AlienDevice>()).is_ok());
}

TEST_F(DeviceFixture, StaticAttrsAreCached) {
  ASSERT_TRUE(registry.add(std::make_unique<devices::Mica2Mote>(
                               "m1", Location{1, 2, 3}))
                  .is_ok());
  const auto* attrs = registry.static_attrs("m1");
  ASSERT_NE(attrs, nullptr);
  EXPECT_TRUE(device::value_equal(attrs->at("id"), Value{std::string("m1")}));
  EXPECT_TRUE(device::value_equal(attrs->at("loc"), Value{Location{1, 2, 3}}));
  EXPECT_EQ(registry.static_attrs("ghost"), nullptr);
}

TEST_F(DeviceFixture, TypeRegistrationRules) {
  EXPECT_FALSE(registry.register_type(devices::sensor_type_info()).is_ok());
  device::DeviceTypeInfo empty;
  EXPECT_FALSE(registry.register_type(empty).is_ok());
  EXPECT_NE(registry.type_info("sensor"), nullptr);
  EXPECT_EQ(registry.type_info("toaster"), nullptr);
}

// --------------------------------------------------- base device protocol

TEST_F(DeviceFixture, ProbeReturnsStatusSnapshot) {
  ASSERT_TRUE(
      registry.add(std::make_unique<devices::Mica2Mote>("m1", Location{}))
          .is_ok());
  ASSERT_TRUE(network.set_link("m1", net::LinkModel::perfect()).is_ok());
  Probe probe(&network);
  ASSERT_TRUE(network.attach("tester", &probe, net::LinkModel::perfect()).is_ok());

  bool answered = false;
  probe.rpc.call("m1", "probe", {}, Duration::seconds(5),
                 [&](util::Result<net::Message> reply) {
                   answered = true;
                   ASSERT_TRUE(reply.is_ok());
                   EXPECT_EQ(reply.value().kind, "probe_ack");
                   EXPECT_EQ(reply.value().field_int("busy"), 0);
                   EXPECT_GT(reply.value().field_double("status.battery_v"), 2.0);
                 });
  loop.run_all();
  EXPECT_TRUE(answered);
}

TEST_F(DeviceFixture, OfflineDeviceIsSilent) {
  auto mote = std::make_unique<devices::Mica2Mote>("m1", Location{});
  devices::Mica2Mote* raw = mote.get();
  ASSERT_TRUE(registry.add(std::move(mote)).is_ok());
  ASSERT_TRUE(network.set_link("m1", net::LinkModel::perfect()).is_ok());
  raw->set_online(false);

  Probe probe(&network);
  ASSERT_TRUE(network.attach("tester", &probe, net::LinkModel::perfect()).is_ok());
  bool timed_out = false;
  probe.rpc.call("m1", "probe", {}, Duration::millis(100),
                 [&](util::Result<net::Message> reply) {
                   timed_out = !reply.is_ok();
                 });
  loop.run_all();
  EXPECT_TRUE(timed_out);

  // Back online, it answers again.
  raw->set_online(true);
  bool answered = false;
  probe.rpc.call("m1", "probe", {}, Duration::millis(500),
                 [&](util::Result<net::Message> reply) {
                   answered = reply.is_ok();
                 });
  loop.run_all();
  EXPECT_TRUE(answered);
}

TEST_F(DeviceFixture, ReadAttrReturnsTypedValueAndErrors) {
  auto mote = std::make_unique<devices::Mica2Mote>("m1", Location{});
  (void)mote->set_signal("temp", devices::constant_signal(25.5));
  mote->reliability().glitch_prob = 0.0;
  ASSERT_TRUE(registry.add(std::move(mote)).is_ok());
  ASSERT_TRUE(network.set_link("m1", net::LinkModel::perfect()).is_ok());

  Probe probe(&network);
  ASSERT_TRUE(network.attach("tester", &probe, net::LinkModel::perfect()).is_ok());
  int answered = 0;
  probe.rpc.call("m1", "read_attr", {{"attr", "temp"}}, Duration::seconds(5),
                 [&](util::Result<net::Message> reply) {
                   ++answered;
                   ASSERT_TRUE(reply.is_ok());
                   EXPECT_EQ(reply.value().field("ok"), "1");
                   EXPECT_DOUBLE_EQ(reply.value().field_double("value_double"),
                                    25.5);
                 });
  probe.rpc.call("m1", "read_attr", {{"attr", "nonexistent"}},
                 Duration::seconds(5), [&](util::Result<net::Message> reply) {
                   ++answered;
                   ASSERT_TRUE(reply.is_ok());
                   EXPECT_EQ(reply.value().field("ok"), "0");
                 });
  loop.run_all();
  EXPECT_EQ(answered, 2);
}

TEST_F(DeviceFixture, BusyDeviceDropsRequestsProbabilistically) {
  auto mote = std::make_unique<devices::Mica2Mote>("m1", Location{});
  devices::Mica2Mote* raw = mote.get();
  raw->reliability().glitch_prob = 0.0;
  raw->reliability().busy_drop_base = 1.0;  // always drop when busy
  ASSERT_TRUE(registry.add(std::move(mote)).is_ok());
  ASSERT_TRUE(network.set_link("m1", net::LinkModel::perfect()).is_ok());

  Probe probe(&network);
  ASSERT_TRUE(network.attach("tester", &probe, net::LinkModel::perfect()).is_ok());

  int ok = 0, timeouts = 0;
  // First beep occupies the mote (beep service time 0.1 s); the second
  // arrives while busy and is dropped.
  probe.rpc.call("m1", "beep", {}, Duration::seconds(5),
                 [&](util::Result<net::Message> reply) {
                   reply.is_ok() ? ++ok : ++timeouts;
                 });
  loop.run_for(Duration::millis(10));  // ensure ordering: beep in progress
  probe.rpc.call("m1", "beep", {}, Duration::millis(300),
                 [&](util::Result<net::Message> reply) {
                   reply.is_ok() ? ++ok : ++timeouts;
                 });
  loop.run_all();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(raw->op_stats().requests_dropped_busy, 1u);
}

}  // namespace
}  // namespace aorta
