// Direct unit tests for the shared action operator: batching, probing
// integration, scheduling, execution and per-query outcome accounting.
#include <gtest/gtest.h>

#include "devices/camera.h"
#include "query/action_operator.h"
#include "sched/algorithms.h"
#include "sched/cost_model.h"

namespace aorta::query {
namespace {

using util::Duration;

struct OperatorFixture : public ::testing::Test {
  OperatorFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)),
        comm(&registry, &network),
        locks(&loop),
        prober(&comm, &registry, &loop) {
    (void)registry.register_type(devices::camera_type_info());

    action.name = "photo";
    action.params = {{device::AttrType::kString, "camera_ip"},
                     {device::AttrType::kLocation, "location"},
                     {device::AttrType::kString, "directory"}};
    action.device_type = "camera";
    action.binding_param = 0;
    action.binding_attr = "ip";
    action.profile = sched::PhotoCostModel::make_photo_profile();
    action.cost_model = std::shared_ptr<const sched::CostModel>(
        sched::PhotoCostModel::axis2130().release());
    // Implementation: photo through the comm layer at the head position
    // resolved per device from the request's world-target params.
    action.impl = [this](const device::DeviceId& device,
                         const std::vector<device::Value>& args,
                         std::function<void(util::Result<sched::ActionOutcome>)>
                             done) {
      (void)args;
      comm.camera().photo(
          device, devices::PtzPosition{0, 0, 1}, "medium",
          [done = std::move(done)](util::Result<comm::PhotoOutcome> outcome) {
            if (!outcome.is_ok()) {
              done(util::Result<sched::ActionOutcome>(outcome.status()));
              return;
            }
            sched::ActionOutcome out;
            out.ok = outcome.value().ok;
            out.degraded = outcome.value().ok && !outcome.value().usable();
            done(out);
          });
    };

    scheduler = sched::make_scheduler("SRFAE");
  }

  devices::PtzCamera* add_camera(const std::string& id) {
    auto camera = std::make_unique<devices::PtzCamera>(
        id, "10.0.0." + id, devices::CameraPose{{0, 0, 3}, 0.0});
    camera->reliability().glitch_prob = 0.0;
    camera->set_fatigue_coeff(0.0);
    devices::PtzCamera* raw = camera.get();
    EXPECT_TRUE(registry.add(std::move(camera)).is_ok());
    return raw;
  }

  std::unique_ptr<ActionOperator> make_operator(
      ActionOperator::Options options = {}) {
    return std::make_unique<ActionOperator>(&action, &prober, &locks,
                                            &registry, &loop, scheduler.get(),
                                            util::Rng(99), options);
  }

  sched::ActionRequest make_request(const std::string& query_id,
                                    std::vector<device::DeviceId> candidates) {
    sched::ActionRequest r;
    r.query_id = query_id;
    r.candidates = std::move(candidates);
    r.params = {{"pan", 30.0}, {"tilt", 0.0}, {"zoom", 1.0}};
    return r;
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  comm::CommLayer comm;
  sync::LockManager locks;
  sync::Prober prober;
  ActionDef action;
  std::unique_ptr<sched::Scheduler> scheduler;
};

TEST_F(OperatorFixture, FlushWithNothingPendingCompletesImmediately) {
  auto op = make_operator();
  bool done = false;
  op->flush([&]() { done = true; });
  EXPECT_TRUE(done);
  EXPECT_EQ(op->stats().batches, 0u);
}

TEST_F(OperatorFixture, BatchesRequestsFromMultipleQueries) {
  add_camera("cam1");
  add_camera("cam2");
  auto op = make_operator();
  op->enqueue(make_request("q1", {"cam1", "cam2"}));
  op->enqueue(make_request("q2", {"cam1", "cam2"}));
  op->enqueue(make_request("q2", {"cam1", "cam2"}));
  EXPECT_TRUE(op->has_pending());

  bool done = false;
  op->flush([&]() { done = true; });
  loop.run_for(Duration::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_FALSE(op->has_pending());
  EXPECT_EQ(op->stats().batches, 1u);
  EXPECT_EQ(op->stats().requests, 3u);
  EXPECT_DOUBLE_EQ(op->stats().batch_size.mean(), 3.0);

  ASSERT_EQ(op->query_stats().count("q1"), 1u);
  ASSERT_EQ(op->query_stats().count("q2"), 1u);
  EXPECT_EQ(op->query_stats().at("q1").usable, 1u);
  EXPECT_EQ(op->query_stats().at("q2").usable, 2u);
  // Schedule history recorded one round with 3 items.
  ASSERT_EQ(op->schedule_history().size(), 1u);
  EXPECT_EQ(op->schedule_history()[0].items.size(), 3u);
}

TEST_F(OperatorFixture, DeadCandidatesExcludedAndAllDeadFails) {
  add_camera("cam1")->set_online(false);
  devices::PtzCamera* cam2 = add_camera("cam2");

  auto op = make_operator();
  op->enqueue(make_request("q1", {"cam1", "cam2"}));
  op->enqueue(make_request("q2", {"cam1"}));  // only the dead one
  bool done = false;
  op->flush([&]() { done = true; });
  loop.run_for(Duration::seconds(30));
  ASSERT_TRUE(done);

  EXPECT_EQ(op->query_stats().at("q1").usable, 1u);
  EXPECT_EQ(op->query_stats().at("q2").no_candidate, 1u);
  EXPECT_EQ(cam2->camera_stats().photos_ok, 1u);
}

TEST_F(OperatorFixture, MissingImplementationReportsFailure) {
  add_camera("cam1");
  action.impl = nullptr;
  auto op = make_operator();
  op->enqueue(make_request("q1", {"cam1"}));
  bool done = false;
  op->flush([&]() { done = true; });
  loop.run_for(Duration::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(op->query_stats().at("q1").failed, 1u);
}

TEST_F(OperatorFixture, SequentialFlushesAccumulateStats) {
  add_camera("cam1");
  auto op = make_operator();
  for (int round = 0; round < 3; ++round) {
    op->enqueue(make_request("q1", {"cam1"}));
    bool done = false;
    op->flush([&]() { done = true; });
    loop.run_for(Duration::seconds(30));
    ASSERT_TRUE(done);
  }
  EXPECT_EQ(op->stats().batches, 3u);
  EXPECT_EQ(op->query_stats().at("q1").usable, 3u);
  EXPECT_EQ(op->schedule_history().size(), 3u);
}

TEST_F(OperatorFixture, ProbingDisabledTrustsRegistry) {
  devices::PtzCamera* cam = add_camera("cam1");
  cam->set_online(false);  // dead, but probing is off
  ActionOperator::Options options;
  options.use_probing = false;
  auto op = make_operator(options);
  op->enqueue(make_request("q1", {"cam1"}));
  bool done = false;
  op->flush([&]() { done = true; });
  loop.run_for(Duration::seconds(60));
  ASSERT_TRUE(done);
  // The action was attempted against the dead camera and timed out.
  EXPECT_EQ(op->query_stats().at("q1").failed, 1u);
  EXPECT_EQ(op->query_stats().at("q1").no_candidate, 0u);
}

TEST_F(OperatorFixture, ProbeStatusFeedsSequenceDependentScheduling) {
  // Two cameras, heads parked at opposite extremes; two requests whose
  // targets match one head each. A status-aware schedule services each
  // request on the camera already aimed at it (cost 0.36 each).
  devices::PtzCamera* cam1 = add_camera("cam1");
  devices::PtzCamera* cam2 = add_camera("cam2");
  cam1->set_head(devices::PtzPosition{-150, 0, 1});
  cam2->set_head(devices::PtzPosition{150, 0, 1});

  auto op = make_operator();
  sched::ActionRequest r1 = make_request("q1", {"cam1", "cam2"});
  r1.params = {{"pan", -150.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  sched::ActionRequest r2 = make_request("q2", {"cam1", "cam2"});
  r2.params = {{"pan", 150.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  op->enqueue(std::move(r1));
  op->enqueue(std::move(r2));

  bool done = false;
  op->flush([&]() { done = true; });
  loop.run_for(Duration::seconds(30));
  ASSERT_TRUE(done);

  ASSERT_EQ(op->schedule_history().size(), 1u);
  const sched::ScheduleResult& schedule = op->schedule_history()[0];
  // Each request scheduled on its already-aimed camera at capture cost.
  for (const auto& item : schedule.items) {
    EXPECT_NEAR(item.finish_s - item.start_s, 0.36, 1e-6);
  }
  EXPECT_NEAR(schedule.service_makespan_s, 0.36, 1e-6);
}

}  // namespace
}  // namespace aorta::query
