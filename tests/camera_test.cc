// Tests for the PTZ camera simulator: kinematics, photo timing against the
// published cost range, interference between concurrent actions, and the
// fatigue model — the behaviours the Section 6 experiments rest on.
#include <gtest/gtest.h>

#include "comm/comm_module.h"
#include "devices/camera.h"

namespace aorta {
namespace {

using devices::CameraPose;
using devices::PtzLimits;
using devices::PtzPosition;
using devices::PtzSpeeds;
using util::Duration;

// ------------------------------------------------------------- ptz math

TEST(PtzMathTest, NormalizeDegrees) {
  EXPECT_DOUBLE_EQ(devices::normalize_deg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(devices::normalize_deg(190.0), -170.0);
  EXPECT_DOUBLE_EQ(devices::normalize_deg(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(devices::normalize_deg(540.0), 180.0);
}

TEST(PtzMathTest, MoveTimeIsSlowesAxis) {
  PtzSpeeds speeds;  // pan 67.6 deg/s, tilt 25 deg/s, zoom 6 /s
  PtzPosition from{0, 0, 1};
  PtzPosition to{67.6, 0, 1};
  EXPECT_NEAR(move_time_s(from, to, speeds), 1.0, 1e-9);
  to = PtzPosition{0, -25, 1};
  EXPECT_NEAR(move_time_s(from, to, speeds), 1.0, 1e-9);
  to = PtzPosition{67.6, -50, 1};  // tilt is slower: 2 s vs 1 s
  EXPECT_NEAR(move_time_s(from, to, speeds), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(move_time_s(from, from, speeds), 0.0);
}

TEST(PtzMathTest, WorstCasePanSweepMatchesPublishedCostRange) {
  // Full pan sweep + medium capture must reach the paper's photo() maximum
  // of 5.36 s; a no-move capture its minimum of 0.36 s.
  PtzSpeeds speeds;
  PtzLimits limits;
  double sweep = move_time_s(PtzPosition{limits.pan_min_deg, 0, 1},
                             PtzPosition{limits.pan_max_deg, 0, 1}, speeds);
  EXPECT_NEAR(sweep + devices::capture_time_s("medium"), 5.36, 0.01);
  EXPECT_NEAR(devices::capture_time_s("medium"), 0.36, 1e-9);
}

TEST(PtzMathTest, AimAtComputesBearingTiltAndZoom) {
  CameraPose pose{{0, 0, 3}, 0.0};
  // Target due "north" (positive y) at floor level.
  PtzPosition aim = devices::aim_at(pose, {0, 4, 0});
  EXPECT_NEAR(aim.pan_deg, 90.0, 1e-6);
  EXPECT_LT(aim.tilt_deg, 0.0);  // looks down
  EXPECT_GT(aim.zoom, 1.0);      // 5 m away -> zoomed in

  // Mounting yaw rotates the pan-zero direction.
  CameraPose rotated{{0, 0, 3}, 90.0};
  PtzPosition aim2 = devices::aim_at(rotated, {0, 4, 0});
  EXPECT_NEAR(aim2.pan_deg, 0.0, 1e-6);
}

TEST(PtzMathTest, AimAtClampsToLimits) {
  PtzLimits limits;
  CameraPose pose{{0, 0, 0}, 0.0};
  PtzPosition aim = devices::aim_at(pose, {-5, -0.1, 0}, limits);  // ~-178 deg
  EXPECT_GE(aim.pan_deg, limits.pan_min_deg);
  PtzPosition far = devices::aim_at(pose, {1000, 0, 0}, limits);
  EXPECT_LE(far.zoom, limits.zoom_max);
}

TEST(PtzMathTest, CoverageRespectsRangeAndPanLimits) {
  CameraPose pose{{0, 0, 3}, 0.0};
  EXPECT_TRUE(devices::covers(pose, {5, 0, 0}, 25.0));
  EXPECT_FALSE(devices::covers(pose, {50, 0, 0}, 25.0));  // out of range
  // Directly behind the pan dead zone (pan would be ~180 deg > 169).
  EXPECT_FALSE(devices::covers(pose, {-5, 0.0, 3}, 25.0));
}

// --------------------------------------------------------- camera device

struct CameraFixture : public ::testing::Test {
  CameraFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)),
        comm(&registry, &network) {
    (void)registry.register_type(devices::camera_type_info());
    auto camera = std::make_unique<devices::PtzCamera>(
        "cam1", "10.0.0.1", CameraPose{{0, 0, 3}, 0.0});
    cam = camera.get();
    cam->reliability().glitch_prob = 0.0;
    cam->set_fatigue_coeff(0.0);
    EXPECT_TRUE(registry.add(std::move(camera)).is_ok());
    // Deterministic timing for duration assertions.
    (void)network.set_link("cam1", net::LinkModel::perfect());
    (void)network.set_link(comm::EngineNode::kNodeId, net::LinkModel::perfect());
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  comm::CommLayer comm;
  devices::PtzCamera* cam = nullptr;
};

TEST_F(CameraFixture, PhotoTakesMovementPlusCaptureTime) {
  PtzPosition target{67.6, 0, 1};  // 1 s pan from rest
  bool done = false;
  util::TimePoint start = loop.now();
  comm.camera().photo("cam1", target, "medium",
                      [&](util::Result<comm::PhotoOutcome> outcome) {
                        done = true;
                        ASSERT_TRUE(outcome.is_ok());
                        EXPECT_TRUE(outcome.value().usable());
                        EXPECT_NEAR(outcome.value().pan_deg, 67.6, 1e-6);
                      });
  loop.run_all();
  ASSERT_TRUE(done);
  EXPECT_NEAR((loop.now() - start).to_seconds(), 1.0 + 0.36, 1e-6);
  EXPECT_EQ(cam->head(), target);
  EXPECT_EQ(cam->camera_stats().photos_ok, 1u);
}

TEST_F(CameraFixture, SequentialPhotosAreSequenceDependent) {
  // Second photo from the new head position is cheaper than from rest.
  util::TimePoint start = loop.now();
  comm.camera().photo("cam1", PtzPosition{67.6, 0, 1}, "medium",
                      [](util::Result<comm::PhotoOutcome>) {});
  loop.run_all();
  double first = (loop.now() - start).to_seconds();

  start = loop.now();
  comm.camera().photo("cam1", PtzPosition{74.36, 0, 1}, "medium",  // 0.1 s pan
                      [](util::Result<comm::PhotoOutcome>) {});
  loop.run_all();
  double second = (loop.now() - start).to_seconds();
  EXPECT_NEAR(first, 1.36, 1e-5);
  EXPECT_NEAR(second, 0.46, 1e-5);
}

TEST_F(CameraFixture, ConcurrentPhotosInterfere) {
  // Two overlapping photo commands: both come back degraded (blurred or
  // wrong position) — the Section 4 failure mode the locks exist for.
  cam->reliability().busy_drop_base = 0.0;  // isolate interference
  int usable = 0, degraded = 0;
  auto record = [&](util::Result<comm::PhotoOutcome> outcome) {
    ASSERT_TRUE(outcome.is_ok());
    if (!outcome.value().ok) return;
    if (outcome.value().usable()) {
      ++usable;
    } else {
      ++degraded;
    }
  };
  comm.camera().photo("cam1", PtzPosition{100, 0, 1}, "medium", record);
  loop.run_for(Duration::millis(200));  // first well underway
  comm.camera().photo("cam1", PtzPosition{-100, 0, 1}, "medium", record);
  loop.run_all();
  EXPECT_EQ(usable, 0);
  EXPECT_EQ(degraded, 2);
  EXPECT_EQ(cam->camera_stats().photos_blurred +
                cam->camera_stats().photos_wrong_position,
            2u);
}

TEST_F(CameraFixture, SerializedPhotosDoNotInterfere) {
  int usable = 0;
  comm.camera().photo("cam1", PtzPosition{100, 0, 1}, "medium",
                      [&](util::Result<comm::PhotoOutcome> o) {
                        if (o.is_ok() && o.value().usable()) ++usable;
                      });
  loop.run_all();  // completes before the next starts
  comm.camera().photo("cam1", PtzPosition{-100, 0, 1}, "medium",
                      [&](util::Result<comm::PhotoOutcome> o) {
                        if (o.is_ok() && o.value().usable()) ++usable;
                      });
  loop.run_all();
  EXPECT_EQ(usable, 2);
}

TEST_F(CameraFixture, FatigueRaisesFailureProbabilityUnderLoad) {
  cam->set_fatigue_coeff(5.0);  // exaggerated for the test
  int failures = 0, attempts = 0;
  // Hammer the camera (sequentially, no interference) and expect failures
  // to appear as utilization builds.
  for (int i = 0; i < 30; ++i) {
    ++attempts;
    comm.camera().photo("cam1", PtzPosition{(i % 2) ? 150.0 : -150.0, 0, 1},
                        "medium", [&](util::Result<comm::PhotoOutcome> o) {
                          if (o.is_ok() && !o.value().ok) ++failures;
                        });
    loop.run_all();
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, attempts);
  EXPECT_GT(cam->current_utilization(), 0.0);
}

TEST_F(CameraFixture, ReadAttributesExposePhysicalStatus) {
  cam->set_head(PtzPosition{45, -30, 2});
  auto pan = cam->read_attribute("pan");
  auto tilt = cam->read_attribute("tilt");
  auto zoom = cam->read_attribute("zoom");
  ASSERT_TRUE(pan.is_ok());
  EXPECT_TRUE(device::value_equal(pan.value(), device::Value{45.0}));
  EXPECT_TRUE(device::value_equal(tilt.value(), device::Value{-30.0}));
  EXPECT_TRUE(device::value_equal(zoom.value(), device::Value{2.0}));
  EXPECT_FALSE(cam->read_attribute("shutter_count").is_ok());

  auto status = cam->status_snapshot();
  EXPECT_DOUBLE_EQ(status.at("pan"), 45.0);
  EXPECT_DOUBLE_EQ(status.at("tilt"), -30.0);
}

TEST_F(CameraFixture, StaticAttrsIncludePoseForCostResolution) {
  auto attrs = cam->static_attrs();
  EXPECT_TRUE(device::value_equal(attrs.at("ip"),
                                  device::Value{std::string("10.0.0.1")}));
  EXPECT_TRUE(device::value_equal(attrs.at("loc"),
                                  device::Value{device::Location{0, 0, 3}}));
  EXPECT_TRUE(device::value_equal(attrs.at("yaw"), device::Value{0.0}));
}

TEST_F(CameraFixture, PhotoSizesScaleCaptureAndBytes) {
  EXPECT_LT(devices::capture_time_s("small"), devices::capture_time_s("medium"));
  EXPECT_LT(devices::capture_time_s("medium"), devices::capture_time_s("large"));
  EXPECT_LT(devices::photo_bytes("small"), devices::photo_bytes("large"));
}

TEST(CameraTypeInfoTest, AtomicOpRatesMatchKinematics) {
  device::DeviceTypeInfo info = devices::camera_type_info();
  PtzSpeeds speeds;
  const device::AtomicOpCost* pan = info.op_costs.find("pan");
  ASSERT_NE(pan, nullptr);
  EXPECT_NEAR(pan->per_unit_s, 1.0 / speeds.pan_deg_per_s, 1e-12);
  const device::AtomicOpCost* snap = info.op_costs.find("snap_medium");
  ASSERT_NE(snap, nullptr);
  EXPECT_NEAR(snap->fixed_s, devices::capture_time_s("medium"), 1e-12);
  EXPECT_NE(info.catalog.find("pan"), nullptr);
  EXPECT_TRUE(info.catalog.find("pan")->sensory);
  EXPECT_FALSE(info.catalog.find("ip")->sensory);
}

}  // namespace
}  // namespace aorta
