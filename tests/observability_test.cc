// Tests for the observability extensions (continuous result streams, the
// event trace), the LPT extension scheduler, and parser robustness
// (fuzzing + expression round-trips).
#include <gtest/gtest.h>

#include "core/aorta.h"
#include "query/parser.h"
#include "sched/algorithms.h"
#include "sched/workload.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;
using util::TimePoint;

// ------------------------------------------------- continuous result rows

struct ResultsFixture : public ::testing::Test {
  ResultsFixture() : sys(core::Config{.seed = 37}) {
    (void)sys.add_mote("m1", {1, 1, 1});
    sys.mote("m1")->reliability().glitch_prob = 0.0;
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    (void)sys.network().set_link("m1", link);
    auto script = std::make_unique<devices::ScriptedSignal>(0.0);
    script->add_spike(TimePoint::from_micros(10'000'000), Duration::seconds(2),
                      700.0);
    script->add_spike(TimePoint::from_micros(40'000'000), Duration::seconds(2),
                      900.0);
    (void)sys.mote("m1")->set_signal("accel_x", std::move(script));
  }
  core::Aorta sys;
};

TEST_F(ResultsFixture, ProjectionsProduceTimestampedRowsAtEvents) {
  ASSERT_TRUE(sys.exec("CREATE AQ watch AS SELECT s.id, s.accel_x "
                       "FROM sensor s WHERE s.accel_x > 500")
                  .is_ok());
  sys.run_for(Duration::seconds(60));

  auto rows = sys.executor().recent_results("watch");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(rows[0].at.to_seconds(), 10.0, 1.5);
  EXPECT_NEAR(rows[1].at.to_seconds(), 40.0, 1.5);
  ASSERT_EQ(rows[0].row.size(), 2u);
  EXPECT_TRUE(device::value_equal(rows[0].row[0].second,
                                  Value{std::string("m1")}));
  EXPECT_TRUE(device::value_equal(rows[0].row[1].second, Value{700.0}));
  EXPECT_TRUE(device::value_equal(rows[1].row[1].second, Value{900.0}));
}

TEST_F(ResultsFixture, ActionOnlyQueriesProduceNoRows) {
  ASSERT_TRUE(sys.exec("CREATE AQ alarm AS SELECT beep(s.id) "
                       "FROM sensor s WHERE s.accel_x > 500")
                  .is_ok());
  sys.run_for(Duration::seconds(60));
  EXPECT_TRUE(sys.executor().recent_results("alarm").empty());
  EXPECT_TRUE(sys.executor().recent_results("no_such_query").empty());
}

TEST_F(ResultsFixture, ContinuousAvgStreamsPerEpochWindows) {
  // Plain continuous avg() (no WINDOW clause) is a per-epoch aggregate:
  // one row per AQ epoch averaging that epoch's sample.
  ASSERT_TRUE(sys.exec("CREATE AQ watch AS SELECT avg(s.accel_x) "
                       "FROM sensor s")
                  .is_ok());
  sys.run_for(Duration::seconds(10));

  auto rows = sys.executor().recent_results("watch");
  ASSERT_GE(rows.size(), 5u);
  ASSERT_EQ(rows[0].row.size(), 1u);
  EXPECT_EQ(rows[0].row[0].first, "avg(s.accel_x)");
  // One mote, flat signal at 0.0 outside the scripted spikes.
  EXPECT_TRUE(device::value_equal(rows[0].row[0].second, Value{0.0}));
}

// ----------------------------------------------------------------- trace

TEST_F(ResultsFixture, TraceRecordsEventRequestBatchOutcome) {
  ASSERT_TRUE(sys.add_camera("cam1", "10.0.0.1", {{0, 0, 3}, 0.0}).is_ok());
  sys.camera("cam1")->reliability().glitch_prob = 0.0;
  sys.camera("cam1")->set_fatigue_coeff(0.0);
  ASSERT_TRUE(sys.exec("CREATE AQ snap AS SELECT photo(c.ip, s.loc, 'd') "
                       "FROM sensor s, camera c "
                       "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys.run_for(Duration::seconds(60));

  std::map<std::string, int> kinds;
  for (const auto& entry : sys.executor().trace()) ++kinds[entry.kind];
  EXPECT_EQ(kinds["event"], 2);
  EXPECT_EQ(kinds["request"], 2);
  EXPECT_EQ(kinds["batch"], 2);
  EXPECT_EQ(kinds["outcome"], 2);

  // Entries are chronological and carry the owning query where relevant.
  const auto& trace = sys.executor().trace();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].at, trace[i].at);
  }
  bool saw_query = false;
  for (const auto& entry : trace) {
    if (entry.kind == "outcome") {
      EXPECT_EQ(entry.query, "snap");
      EXPECT_NE(entry.detail.find("photo on cam1"), std::string::npos);
      saw_query = true;
    }
  }
  EXPECT_TRUE(saw_query);
}

// ------------------------------------------------------------------- LPT

TEST(LptTest, ValidAndCompetitive) {
  auto model = sched::PhotoCostModel::axis2130();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sched::WorkloadSpec spec;
    spec.n_requests = 20;
    spec.n_devices = 10;
    spec.seed = seed;
    sched::Workload w = sched::make_photo_workload(spec);

    util::Rng rng1(seed), rng2(seed);
    auto lpt = sched::make_scheduler("LPT")->schedule(w.requests, w.devices,
                                                      *model, rng1);
    auto random = sched::make_scheduler("RANDOM")->schedule(
        w.requests, w.devices, *model, rng2);
    EXPECT_TRUE(
        sched::validate_schedule(lpt, w.requests, w.devices, *model).is_ok());
    EXPECT_TRUE(lpt.unassigned.empty());
    EXPECT_LT(lpt.service_makespan_s, random.service_makespan_s);
  }
}

TEST(LptTest, LongestRequestPlacedFirst) {
  sched::FixedCostModel model;
  std::vector<sched::ActionRequest> requests(3);
  double costs[3] = {1.0, 5.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    auto& r = requests[static_cast<std::size_t>(i)];
    r.id = static_cast<std::uint64_t>(i + 1);
    r.base_cost_s = costs[i];
    r.candidates = {"d1", "d2"};
  }
  std::vector<sched::SchedDevice> devices(2);
  devices[0].id = "d1";
  devices[1].id = "d2";
  util::Rng rng(1);
  auto result = sched::LptScheduler().schedule(requests, devices, model, rng);
  // LPT: 5 goes alone to one device, 2 and 1 share the other -> makespan 5.
  EXPECT_DOUBLE_EQ(result.service_makespan_s, 5.0);
}

// -------------------------------------------------- parser fuzz / roundtrip

TEST(ParserFuzzTest, RandomInputNeverCrashes) {
  // Seeded random strings over a token-ish alphabet: the parser must
  // either parse or return a clean error, never crash or hang.
  const std::vector<std::string> vocabulary = {
      "SELECT", "FROM",  "WHERE", "CREATE", "AQ",    "ACTION",  "AS",
      "AND",    "OR",    "NOT",   "EVERY",  "DROP",  "SHOW",    "EXPLAIN",
      "s",      "c",     "photo", "sensor", "camera", "accel_x", "loc",
      "(",      ")",     ",",     ".",      ";",     "+",       "-",
      "*",      "/",     ">",     "<",      "=",     "<>",      "<=",
      "'str'",  "\"q\"", "42",    "3.5",    "TRUE",  "NULL",    "@@",
  };
  util::Rng rng(20260707);
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    int tokens = static_cast<int>(rng.uniform_int(0, 24));
    for (int t = 0; t < tokens; ++t) {
      input += vocabulary[rng.index(vocabulary.size())];
      input += ' ';
    }
    auto result = query::parse(input);
    (void)result;  // either outcome is fine; surviving is the property
  }
  SUCCEED();
}

// Random well-formed expression trees must survive a
// to_string -> parse -> to_string round trip unchanged.
query::ExprPtr random_expr(util::Rng& rng, int depth) {
  using query::Expr;
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        return Expr::make_literal(Value{static_cast<double>(
            rng.uniform_int(0, 99)) + 0.5});
      case 1:
        return Expr::make_literal(Value{std::string("txt")});
      case 2:
        return Expr::make_column("t", "col" + std::to_string(rng.index(4)));
      default:
        return Expr::make_column("", "bare" + std::to_string(rng.index(4)));
    }
  }
  switch (rng.uniform_int(0, 3)) {
    case 0: {
      std::vector<query::ExprPtr> args;
      for (std::size_t i = rng.index(3); i > 0; --i) {
        args.push_back(random_expr(rng, depth - 1));
      }
      return Expr::make_func("fn" + std::to_string(rng.index(3)),
                             std::move(args));
    }
    case 1:
      return Expr::make_not(random_expr(rng, depth - 1));
    default: {
      auto op = static_cast<query::BinaryOp>(rng.uniform_int(0, 11));
      return Expr::make_binary(op, random_expr(rng, depth - 1),
                               random_expr(rng, depth - 1));
    }
  }
}

TEST(ParserRoundTripTest, ExpressionsSurviveToStringParse) {
  util::Rng rng(99);
  for (int round = 0; round < 300; ++round) {
    query::ExprPtr original = random_expr(rng, 4);
    std::string text = original->to_string();
    auto reparsed = query::parse_expression(text);
    ASSERT_TRUE(reparsed.is_ok()) << text << ": "
                                  << reparsed.status().to_string();
    EXPECT_EQ(reparsed.value()->to_string(), text) << text;
  }
}

}  // namespace
}  // namespace aorta
