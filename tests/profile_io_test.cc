// Tests for device-type XML bundles (profile persistence) and the
// real-time event loop driver.
#include <gtest/gtest.h>

#include "core/aorta.h"
#include "device/profile_io.h"
#include "devices/camera.h"
#include "devices/mote.h"
#include "devices/phone.h"
#include "devices/smart_lock.h"
#include "util/realtime.h"

namespace aorta {
namespace {

using util::Duration;

TEST(ProfileIoTest, EveryBuiltinTypeRoundTrips) {
  for (const auto& info :
       {devices::camera_type_info(), devices::sensor_type_info(),
        devices::phone_type_info(), devices::doorlock_type_info()}) {
    std::string xml = device::device_type_to_xml(info);
    auto parsed = device::device_type_from_xml(xml);
    ASSERT_TRUE(parsed.is_ok()) << info.type_id << ": "
                                << parsed.status().to_string();
    const device::DeviceTypeInfo& round = parsed.value();
    EXPECT_EQ(round.type_id, info.type_id);
    EXPECT_EQ(round.probe_timeout, info.probe_timeout);
    EXPECT_DOUBLE_EQ(round.link.latency_mean_s, info.link.latency_mean_s);
    EXPECT_DOUBLE_EQ(round.link.loss_prob, info.link.loss_prob);
    ASSERT_EQ(round.catalog.attrs().size(), info.catalog.attrs().size());
    for (std::size_t i = 0; i < info.catalog.attrs().size(); ++i) {
      EXPECT_EQ(round.catalog.attrs()[i].name, info.catalog.attrs()[i].name);
      EXPECT_EQ(round.catalog.attrs()[i].sensory,
                info.catalog.attrs()[i].sensory);
    }
    ASSERT_EQ(round.op_costs.ops().size(), info.op_costs.ops().size());
    for (const auto& op : info.op_costs.ops()) {
      const device::AtomicOpCost* found = round.op_costs.find(op.name);
      ASSERT_NE(found, nullptr) << op.name;
      EXPECT_DOUBLE_EQ(found->fixed_s, op.fixed_s);
      EXPECT_DOUBLE_EQ(found->per_unit_s, op.per_unit_s);
    }
  }
}

TEST(ProfileIoTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(device::device_type_from_xml("<wrong/>").is_ok());
  EXPECT_FALSE(device::device_type_from_xml("<device_type/>").is_ok());
  // Missing catalog.
  EXPECT_FALSE(
      device::device_type_from_xml("<device_type id=\"x\"><link/></device_type>")
          .is_ok());
  // Catalog type mismatch.
  EXPECT_FALSE(device::device_type_from_xml(
                   "<device_type id=\"x\">"
                   "<catalog device_type=\"y\"/></device_type>")
                   .is_ok());
}

TEST(ProfileIoTest, FacadeExportsAndReimports) {
  core::Aorta sys(core::Config{});
  auto exported = sys.export_device_types();
  EXPECT_EQ(exported.size(), 3u);  // camera, sensor, phone
  ASSERT_TRUE(exported.count("camera"));

  // Re-register one of the exports in a fresh system under a new name.
  std::string xml = exported.at("camera");
  std::string renamed = xml;
  auto pos = renamed.find("\"camera\"");
  while (pos != std::string::npos) {
    renamed.replace(pos, 8, "\"camera2\"");
    pos = renamed.find("\"camera\"", pos);
  }
  ASSERT_TRUE(sys.register_type_from_xml(renamed).is_ok());
  EXPECT_NE(sys.registry().type_info("camera2"), nullptr);
  EXPECT_EQ(sys.registry().type_info("camera2")->catalog.attrs().size(),
            devices::camera_type_info().catalog.attrs().size());
  // Duplicate registration rejected.
  EXPECT_FALSE(sys.register_type_from_xml(xml).is_ok());
  // Garbage rejected.
  EXPECT_FALSE(sys.register_type_from_xml("not xml").is_ok());
}

// ----------------------------------------------------------- real time

TEST(RealTimeTest, PacesSimulatedTimeAgainstWallClock) {
  util::SimClock clock;
  util::EventLoop loop(&clock);
  int fired = 0;
  loop.schedule(Duration::millis(100), [&]() { ++fired; });
  loop.schedule(Duration::millis(900), [&]() { ++fired; });

  // 1 simulated second at 50x speed: ~20 ms wall.
  util::RealTimeOptions options;
  options.speed = 50.0;
  options.quantum = Duration::millis(20);
  double wall_s = util::run_realtime(loop, Duration::seconds(1), options);

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now().to_micros(), 1'000'000);
  EXPECT_GE(wall_s, 0.015);  // paced, not instantaneous
  EXPECT_LT(wall_s, 2.0);    // and not real time either
}

TEST(RealTimeTest, ZeroSpanReturnsImmediately) {
  util::SimClock clock;
  util::EventLoop loop(&clock);
  double wall_s = util::run_realtime(loop, Duration::zero());
  EXPECT_LT(wall_s, 0.1);
  EXPECT_EQ(loop.now(), util::TimePoint::origin());
}

}  // namespace
}  // namespace aorta
