// Tests for the built-in action/function library (Section 2.2's "library
// of system built-in actions").
#include <gtest/gtest.h>

#include "core/aorta.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;

struct BuiltinsFixture : public ::testing::Test {
  BuiltinsFixture() : sys(core::Config{.seed = 31}) {
    (void)sys.add_camera("cam1", "10.0.0.1", {{0, 0, 3}, 0.0}, 20.0);
    sys.camera("cam1")->reliability().glitch_prob = 0.0;
    sys.camera("cam1")->set_fatigue_coeff(0.0);
    (void)sys.add_phone("p1", "+85212345678", {1, 1, 0});
    sys.phone("p1")->reliability().glitch_prob = 0.0;
    (void)sys.add_mote("m1", {3, 0, 1});
    sys.mote("m1")->reliability().glitch_prob = 0.0;
  }

  // Evaluate a catalog function directly.
  util::Result<Value> call(const std::string& name, std::vector<Value> args) {
    const query::ScalarFn* fn = sys.catalog().functions().find(name);
    if (fn == nullptr) {
      return util::Result<Value>(util::not_found_error("no function " + name));
    }
    return (*fn)(args);
  }

  core::Aorta sys;
};

TEST_F(BuiltinsFixture, CoverageTrueInsideRangeFalseOutside) {
  auto near = call("coverage", {Value{std::string("cam1")},
                                Value{device::Location{5, 0, 0}}});
  ASSERT_TRUE(near.is_ok());
  EXPECT_TRUE(device::value_truthy(near.value()));

  auto far = call("coverage", {Value{std::string("cam1")},
                               Value{device::Location{100, 0, 0}}});
  ASSERT_TRUE(far.is_ok());
  EXPECT_FALSE(device::value_truthy(far.value()));
}

TEST_F(BuiltinsFixture, CoverageDegradesGracefullyOnBadInput) {
  // Unknown camera -> FALSE, not an error (a vanished device simply does
  // not cover anything).
  auto ghost = call("coverage", {Value{std::string("nope")},
                                 Value{device::Location{1, 1, 0}}});
  ASSERT_TRUE(ghost.is_ok());
  EXPECT_FALSE(device::value_truthy(ghost.value()));
  // Wrong arity -> error.
  EXPECT_FALSE(call("coverage", {Value{std::string("cam1")}}).is_ok());
  // Non-location second arg -> FALSE.
  auto bad = call("coverage",
                  {Value{std::string("cam1")}, Value{std::int64_t{3}}});
  ASSERT_TRUE(bad.is_ok());
  EXPECT_FALSE(device::value_truthy(bad.value()));
}

TEST_F(BuiltinsFixture, CoverageAcceptsLocationStrings) {
  // The declarative layer can hand locations as "x,y,z" strings.
  auto ok = call("coverage",
                 {Value{std::string("cam1")}, Value{std::string("5,0,0")}});
  ASSERT_TRUE(ok.is_ok());
  EXPECT_TRUE(device::value_truthy(ok.value()));
}

TEST_F(BuiltinsFixture, DistanceComputesEuclidean) {
  auto d = call("distance", {Value{device::Location{0, 0, 0}},
                             Value{device::Location{3, 4, 0}}});
  ASSERT_TRUE(d.is_ok());
  double x = 0;
  ASSERT_TRUE(device::value_as_double(d.value(), &x));
  EXPECT_DOUBLE_EQ(x, 5.0);
  EXPECT_FALSE(call("distance", {Value{device::Location{}}}).is_ok());
}

TEST_F(BuiltinsFixture, AbsHelper) {
  auto v = call("abs", {Value{-3.5}});
  ASSERT_TRUE(v.is_ok());
  EXPECT_TRUE(device::value_equal(v.value(), Value{3.5}));
  EXPECT_FALSE(call("abs", {Value{std::string("x")}}).is_ok());
}

TEST_F(BuiltinsFixture, PhotoActionDefShape) {
  const query::ActionDef* photo = sys.catalog().find_action("photo");
  ASSERT_NE(photo, nullptr);
  EXPECT_EQ(photo->device_type, "camera");
  EXPECT_EQ(photo->binding_param, 0u);
  EXPECT_EQ(photo->binding_attr, "ip");
  ASSERT_EQ(photo->params.size(), 3u);
  EXPECT_NE(photo->cost_model, nullptr);
  EXPECT_TRUE(static_cast<bool>(photo->impl));
  // The profile names the head axes as its status attributes.
  EXPECT_EQ(photo->profile.status_attrs(),
            (std::vector<std::string>{"pan", "tilt", "zoom"}));

  // request_params turns the location arg into world-target parameters.
  sched::ActionRequest request;
  auto s = photo->request_params(
      {Value{std::string("10.0.0.1")}, Value{device::Location{4, 5, 0}},
       Value{std::string("photos")}},
      &request);
  ASSERT_TRUE(s.is_ok());
  EXPECT_DOUBLE_EQ(request.params.at("target_x"), 4.0);
  EXPECT_DOUBLE_EQ(request.params.at("target_y"), 5.0);
}

TEST_F(BuiltinsFixture, PhotoImplAimsAndExposes) {
  const query::ActionDef* photo = sys.catalog().find_action("photo");
  bool done = false;
  photo->impl("cam1",
              {Value{std::string("10.0.0.1")}, Value{device::Location{5, 0, 0}},
               Value{std::string("photos")}},
              [&](util::Result<sched::ActionOutcome> outcome) {
                done = true;
                ASSERT_TRUE(outcome.is_ok());
                EXPECT_TRUE(outcome.value().usable());
              });
  sys.run_for(Duration::seconds(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(sys.camera("cam1")->camera_stats().photos_ok, 1u);
  // The head really moved to aim at the target.
  EXPECT_NEAR(sys.camera("cam1")->head().pan_deg, 0.0, 1.0);
  EXPECT_LT(sys.camera("cam1")->head().tilt_deg, 0.0);
}

TEST_F(BuiltinsFixture, PhotoImplRejectsUnknownCameraAndBadArgs) {
  const query::ActionDef* photo = sys.catalog().find_action("photo");
  bool failed = false;
  photo->impl("ghost_cam",
              {Value{std::string("x")}, Value{device::Location{}},
               Value{std::string("d")}},
              [&](util::Result<sched::ActionOutcome> outcome) {
                failed = !outcome.is_ok();
              });
  sys.run_for(Duration::seconds(1));
  EXPECT_TRUE(failed);

  bool bad_args = false;
  photo->impl("cam1", {Value{std::string("x")}, Value{std::int64_t{7}},
                       Value{std::string("d")}},
              [&](util::Result<sched::ActionOutcome> outcome) {
                bad_args = !outcome.is_ok();
              });
  sys.run_for(Duration::seconds(1));
  EXPECT_TRUE(bad_args);
}

TEST_F(BuiltinsFixture, SendphotoDeliversMms) {
  const query::ActionDef* sendphoto = sys.catalog().find_action("sendphoto");
  ASSERT_NE(sendphoto, nullptr);
  EXPECT_EQ(sendphoto->device_type, "phone");
  EXPECT_EQ(sendphoto->binding_attr, "phone_no");

  bool done = false;
  sendphoto->impl("p1",
                  {Value{std::string("+85212345678")},
                   Value{std::string("photos/evidence.jpg")}},
                  [&](util::Result<sched::ActionOutcome> outcome) {
                    done = true;
                    ASSERT_TRUE(outcome.is_ok());
                    EXPECT_TRUE(outcome.value().ok);
                  });
  sys.run_for(Duration::minutes(1));
  ASSERT_TRUE(done);
  ASSERT_EQ(sys.phone("p1")->inbox().size(), 1u);
  EXPECT_EQ(sys.phone("p1")->inbox()[0].body, "photos/evidence.jpg");
}

TEST_F(BuiltinsFixture, BeepAndBlinkImpls) {
  for (const char* name : {"beep", "blink"}) {
    const query::ActionDef* action = sys.catalog().find_action(name);
    ASSERT_NE(action, nullptr);
    EXPECT_EQ(action->device_type, "sensor");
    bool done = false;
    action->impl("m1", {Value{std::string("m1")}},
                 [&](util::Result<sched::ActionOutcome> outcome) {
                   done = outcome.is_ok() && outcome.value().ok;
                 });
    sys.run_for(Duration::seconds(10));
    EXPECT_TRUE(done) << name;
  }
  EXPECT_EQ(sys.mote("m1")->beeps(), 1u);
  EXPECT_EQ(sys.mote("m1")->blinks(), 1u);
}

TEST_F(BuiltinsFixture, ProfileCostModelsEstimateFixedCosts) {
  const query::ActionDef* sendphoto = sys.catalog().find_action("sendphoto");
  sched::ActionRequest r;
  sched::DeviceStatus any;
  // transfer(80 KiB at 5 kB/s) + recv_mms(1.5 s) ~ 17.9 s.
  double cost = sendphoto->cost_model->cost_s(r, any);
  EXPECT_NEAR(cost, 80.0 * 1024.0 / 5000.0 + 1.5, 0.2);

  // beep = one hop relay (0.05 s) + the sounder op (0.10 s) by default...
  const query::ActionDef* beep = sys.catalog().find_action("beep");
  EXPECT_NEAR(beep->cost_model->cost_s(r, any), 0.15, 1e-9);
  // ...and each extra hop of mote depth adds a relay charge ("the depth of
  // a sensor in a multi-hop network affects the cost", Section 2.3).
  sched::DeviceStatus deep = {{"hops", 4.0}};
  EXPECT_NEAR(beep->cost_model->cost_s(r, deep), 0.10 + 4 * 0.05, 1e-9);
}

TEST_F(BuiltinsFixture, MultiHopMotesGetDegradedLinks) {
  auto one = devices::Mica2Mote::link_for_hops(1);
  auto four = devices::Mica2Mote::link_for_hops(4);
  EXPECT_GT(four.latency_mean_s, 3.0 * one.latency_mean_s);
  EXPECT_GT(four.loss_prob, one.loss_prob);
  EXPECT_LT(four.loss_prob, 1.0);

  ASSERT_TRUE(sys.add_mote("deep", {9, 9, 1}, /*hops=*/3).is_ok());
  const auto* attrs = sys.registry().static_attrs("deep");
  ASSERT_NE(attrs, nullptr);
  EXPECT_TRUE(device::value_equal(attrs->at("hops"), Value{std::int64_t{3}}));
}

}  // namespace
}  // namespace aorta
