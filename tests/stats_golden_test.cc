// Golden test: the registry-walk stats_json() must publish the same
// values the historic hand-concatenated renderer did. The expected
// numbers below were captured by running this exact scenario against the
// pre-registry implementation — any drift means the migration changed
// semantics, not just rendering.
//
// Also pins observability determinism: two same-seed runs produce
// byte-identical metrics documents and byte-identical trace streams.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>

#include "core/aorta.h"
#include "server/service.h"
#include "util/time.h"

namespace aorta {
namespace {

using util::Duration;

struct GoldenRun {
  explicit GoldenRun(bool tracing = false) {
    core::Config cfg;
    cfg.seed = 11;
    cfg.scan_freshness = util::Duration::millis(500);
    cfg.tracing = tracing;
    sys = std::make_unique<core::Aorta>(cfg);
    (void)sys->add_mote("m1", {1, 1, 1});
    (void)sys->add_mote("m2", {2, 2, 1});
    (void)sys->add_camera("cam1", "192.168.0.90", {{0, 0, 3}, 0.0});
    service = std::make_unique<server::QueryService>(sys.get(),
                                                     server::ServiceConfig{});
    auto alice = service->connect("alice");
    auto bob = service->connect("bob");
    (void)service->submit(alice,
                          "CREATE AQ watch AS SELECT s.id, s.accel_x FROM "
                          "sensor s WHERE s.accel_x > 500");
    (void)service->submit(bob, "SELECT s.id, s.temp FROM sensor s");
    sys->run_for(util::Duration::seconds(12));
  }
  std::unique_ptr<core::Aorta> sys;
  std::unique_ptr<server::QueryService> service;
};

TEST(StatsGoldenTest, RegistryValuesMatchPreRegistryCapture) {
  GoldenRun run;
  const obs::MetricsRegistry& m = run.sys->metrics();

  // sessions / admission (server layer).
  EXPECT_EQ(m.gauge_value("sessions.total"), 2);
  EXPECT_EQ(m.gauge_value("sessions.active"), 2);
  EXPECT_EQ(m.counter_value("admission.submitted"), 2u);
  EXPECT_EQ(m.counter_value("admission.admitted"), 2u);
  EXPECT_EQ(m.counter_value("admission.rejected"), 0u);
  EXPECT_EQ(m.counter_value("admission.shed"), 0u);
  EXPECT_EQ(m.counter_value("admission.dispatched"), 2u);
  EXPECT_EQ(m.gauge_value("admission.queued"), 0);

  // scan broker.
  EXPECT_EQ(m.gauge_value("scan_broker.subscribers"), 1);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.batches"), 13u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.rpcs_issued"), 24u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.rpcs_coalesced"), 2u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.cache_hits"), 0u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.read_failures"), 4u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.tuples_delivered"), 20u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.deliveries"), 12u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.devices_skipped"), 4u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.quarantined_skips"), 0u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.degraded_reads"), 0u);
  EXPECT_EQ(m.counter_value("scan_broker.types.sensor.degraded_tuples"), 0u);
  EXPECT_EQ(m.gauge_value("scan_broker.types.sensor.subscribers"), 1);

  // network / rpc.
  EXPECT_EQ(m.counter_value("network.sent"), 44u);
  EXPECT_EQ(m.counter_value("network.delivered"), 40u);
  EXPECT_EQ(m.counter_value("network.dropped_loss"), 3u);
  EXPECT_EQ(m.counter_value("network.dropped_no_route"), 0u);
  EXPECT_EQ(m.counter_value("network.dropped_partition"), 0u);
  EXPECT_EQ(m.counter_value("network.dropped_offline"), 0u);
  EXPECT_EQ(m.counter_value("network.bounced"), 0u);
  EXPECT_EQ(m.counter_value("network.rpc.completed"), 20u);
  EXPECT_EQ(m.counter_value("network.rpc.timeouts"), 2u);
  EXPECT_EQ(m.counter_value("network.rpc.late_replies"), 0u);
  EXPECT_EQ(m.counter_value("network.rpc.unreachable"), 0u);

  // health supervision.
  EXPECT_EQ(m.gauge_value("health.quarantined"), 0);
  EXPECT_EQ(m.counter_value("health.reports_ok"), 20u);
  EXPECT_EQ(m.counter_value("health.reports_failed"), 2u);
  EXPECT_EQ(m.counter_value("health.quarantines"), 0u);
  EXPECT_EQ(m.counter_value("health.recoveries"), 0u);
  EXPECT_EQ(m.counter_value("health.probes_sent"), 0u);
  EXPECT_EQ(m.counter_value("health.probes_failed"), 0u);

  // compiled evaluation. compiled_evals dropped from the pre-index 22
  // when the predicate index started pruning non-matching tuples before
  // the program ever runs (see eval.index.pruned below); the remaining
  // 4 runs belong to the one-shot SELECT.
  EXPECT_EQ(m.counter_value("eval.programs_compiled"), 5u);
  EXPECT_EQ(m.counter_value("eval.programs_fallback"), 0u);
  EXPECT_EQ(m.counter_value("eval.compiled_evals"), 4u);
  EXPECT_EQ(m.counter_value("eval.fallback_evals"), 0u);

  // predicate index: one delivery group (one AQ), every delivered tuple
  // probed. Under seed 11 no sensor sample ever exceeds 500, so the lower
  // bound prunes every tuple — the 18 eliminated probes are exactly the
  // 18 predicate runs compiled_evals lost versus its pre-index value.
  EXPECT_EQ(m.gauge_value("eval.index.entries"), 1);
  EXPECT_EQ(m.gauge_value("eval.index.groups"), 1);
  EXPECT_EQ(m.counter_value("eval.index.probes"), 18u);
  EXPECT_EQ(m.counter_value("eval.index.candidates"), 0u);
  EXPECT_EQ(m.counter_value("eval.index.exact_skips"), 0u);
  EXPECT_EQ(m.counter_value("eval.index.residual_evals"), 0u);
  EXPECT_EQ(m.counter_value("eval.index.pruned"), 18u);
  EXPECT_EQ(m.gauge_value("eval.index.types.sensor.entries"), 1);

  // tenants.
  for (const char* t : {"alice", "bob"}) {
    const std::string p = std::string("tenants.") + t + ".";
    EXPECT_EQ(m.counter_value(p + "submitted"), 1u) << t;
    EXPECT_EQ(m.counter_value(p + "admitted"), 1u) << t;
    EXPECT_EQ(m.counter_value(p + "rejected"), 0u) << t;
    EXPECT_EQ(m.counter_value(p + "shed"), 0u) << t;
    EXPECT_EQ(m.counter_value(p + "dispatched"), 1u) << t;
    EXPECT_EQ(m.counter_value(p + "completed"), 1u) << t;
    EXPECT_EQ(m.counter_value(p + "errors"), 0u) << t;
    EXPECT_EQ(m.counter_value(p + "rows"), 0u) << t;
    EXPECT_EQ(m.counter_value(p + "rows_degraded"), 0u) << t;
    EXPECT_EQ(m.counter_value(p + "outcomes"), 0u) << t;
    EXPECT_EQ(m.counter_value(p + "partial_results"), 0u) << t;
    EXPECT_EQ(m.gauge_value(p + "mailbox_dropped"), 0) << t;
  }

  // Latency distributions and booleans render through stats_json with the
  // historic formatting (%.3f percentiles, exact sample counts).
  const std::string json = run.service->stats_json();
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  // scan_broker.batch_latency_ms: {count: 12, p50: 117.633, ...}.
  EXPECT_NE(json.find("\"count\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 117.633"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 2000.000"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 2000.000"), std::string::npos);
  // tenants.*.admission_latency_ms: {count: 1, p50: 100.000, ...}.
  EXPECT_NE(json.find("\"p50\": 100.000"), std::string::npos);

  // Full snapshot (with histogram buckets) as a file artifact; CI
  // schema-validates it with tools/validate_metrics.py.
  std::ofstream out("metrics_snapshot.json");
  out << m.snapshot_json(/*include_buckets=*/true) << '\n';
  EXPECT_TRUE(out.good());
}

TEST(StatsGoldenTest, HealthSectionReportsDisabledWhenSupervisionOff) {
  core::Config cfg;
  cfg.seed = 11;
  cfg.health_supervision = false;
  core::Aorta sys(cfg);
  EXPECT_EQ(sys.metrics().gauge_value("health.enabled"), 0);
  EXPECT_FALSE(sys.metrics().contains("health.reports_ok"));
  EXPECT_NE(sys.metrics().snapshot_json().find("\"enabled\": false"),
            std::string::npos);
}

TEST(StatsGoldenTest, ShardedPlanePublishesReliableBackplaneSection) {
  core::Config cfg;
  cfg.seed = 11;
  core::Aorta sys(cfg);
  server::ServiceConfig sc;
  sc.num_shards = 2;
  server::QueryService service(&sys, sc);
  const obs::MetricsRegistry& m = sys.metrics();
  // The czar's reliable dispatcher and the plane's replay-buffer view
  // share the "net.reliable." section (DESIGN.md §14).
  for (const char* k :
       {"net.reliable.calls", "net.reliable.attempts", "net.reliable.retries",
        "net.reliable.giveups", "net.reliable.budget_exhausted",
        "net.reliable.breaker.opens", "net.reliable.breaker.rejects"}) {
    EXPECT_TRUE(m.contains(k)) << k;
    EXPECT_EQ(m.counter_value(k), 0u) << k;
  }
  EXPECT_EQ(m.gauge_value("net.reliable.replay_depth"), 0);
  EXPECT_EQ(m.gauge_value("net.reliable.replay_hwm"), 0);

  // Sharded snapshot artifact; CI schema-validates the net.reliable
  // section with tools/validate_metrics.py.
  std::ofstream out("metrics_snapshot_sharded.json");
  out << m.snapshot_json(/*include_buckets=*/true) << '\n';
  EXPECT_TRUE(out.good());
}

TEST(StatsGoldenTest, SameSeedRunsProduceByteIdenticalMetricsAndTraces) {
  GoldenRun a(/*tracing=*/true);
  GoldenRun b(/*tracing=*/true);
  EXPECT_EQ(a.service->stats_json(), b.service->stats_json());
  EXPECT_GT(a.sys->tracer().recorded(), 0u);
  EXPECT_EQ(a.sys->tracer().chrome_json(), b.sys->tracer().chrome_json());
}

}  // namespace
}  // namespace aorta
