// Tests for the declarative interface: lexer, parser, expression
// evaluation and query compilation.
#include <gtest/gtest.h>

#include "devices/camera.h"
#include "devices/mote.h"
#include "devices/phone.h"
#include "query/compile.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "sched/cost_model.h"

namespace aorta::query {
namespace {

using device::Value;

// ------------------------------------------------------------------ lexer

TEST(LexerTest, TokenizesTheSnapshotQuery) {
  auto tokens = lex(
      "CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, \"photos/admin\") "
      "FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
  ASSERT_TRUE(tokens.is_ok());
  const auto& t = tokens.value();
  EXPECT_TRUE(t[0].is_keyword("CREATE"));
  EXPECT_TRUE(t[1].is_keyword("AQ"));
  EXPECT_EQ(t[2].type, TokenType::kIdentifier);
  EXPECT_EQ(t[2].text, "snapshot");
  // The string literal is unquoted in the token.
  bool found_string = false;
  for (const auto& token : t) {
    if (token.type == TokenType::kString) {
      EXPECT_EQ(token.text, "photos/admin");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitiveIdentifiersAreNot) {
  auto tokens = lex("select Foo FROM bar");
  ASSERT_TRUE(tokens.is_ok());
  EXPECT_TRUE(tokens.value()[0].is_keyword("SELECT"));
  EXPECT_EQ(tokens.value()[1].text, "Foo");  // case preserved
}

TEST(LexerTest, NumbersAndOperators) {
  auto tokens = lex("1 2.5 -3 1e3 <= >= <> != = < >");
  ASSERT_TRUE(tokens.is_ok());
  const auto& t = tokens.value();
  EXPECT_DOUBLE_EQ(t[0].number, 1.0);
  EXPECT_DOUBLE_EQ(t[1].number, 2.5);
  EXPECT_TRUE(t[2].is_symbol("-"));  // unary minus handled by the parser
  EXPECT_DOUBLE_EQ(t[3].number, 3.0);
  EXPECT_DOUBLE_EQ(t[4].number, 1000.0);
  EXPECT_TRUE(t[5].is_symbol("<="));
  EXPECT_TRUE(t[6].is_symbol(">="));
  EXPECT_TRUE(t[7].is_symbol("<>"));
  EXPECT_TRUE(t[8].is_symbol("<>"));  // != normalizes to <>
}

TEST(LexerTest, CommentsAndErrors) {
  auto ok = lex("SELECT x -- trailing comment\nFROM t");
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value().size(), 5u);  // SELECT x FROM t END
  EXPECT_FALSE(lex("SELECT 'unterminated").is_ok());
  EXPECT_FALSE(lex("SELECT #x").is_ok());
}

// ----------------------------------------------------------------- parser

TEST(ParserTest, ParsesCreateAq) {
  auto stmt = parse(
      "CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, 'photos/admin') "
      "FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
  ASSERT_TRUE(stmt.is_ok());
  ASSERT_EQ(stmt.value().kind, Statement::Kind::kCreateAq);
  const CreateAqStmt& aq = stmt.value().create_aq;
  EXPECT_EQ(aq.name, "snapshot");
  EXPECT_DOUBLE_EQ(aq.epoch_s, 0.0);
  ASSERT_EQ(aq.select.select_list.size(), 1u);
  EXPECT_EQ(aq.select.select_list[0]->kind, Expr::Kind::kFuncCall);
  EXPECT_EQ(aq.select.select_list[0]->func_name, "photo");
  ASSERT_EQ(aq.select.from.size(), 2u);
  EXPECT_EQ(aq.select.from[0].table, "sensor");
  EXPECT_EQ(aq.select.from[0].alias, "s");
  ASSERT_NE(aq.select.where, nullptr);
  EXPECT_EQ(aq.select.where->op, BinaryOp::kAnd);
}

TEST(ParserTest, ParsesCreateAqWithEpoch) {
  auto stmt = parse("CREATE AQ q EVERY 30 AS SELECT beep(s.id) FROM sensor s");
  ASSERT_TRUE(stmt.is_ok());
  EXPECT_DOUBLE_EQ(stmt.value().create_aq.epoch_s, 30.0);
  EXPECT_FALSE(parse("CREATE AQ q EVERY 0 AS SELECT x FROM t").is_ok());
}

TEST(ParserTest, ParsesCreateActionWithParams) {
  auto stmt = parse(
      "CREATE ACTION sendphoto(String phone_no, String photo_pathname) "
      "AS \"lib/users/sendphoto.dll\" PROFILE \"profiles/users/sendphoto.xml\"");
  ASSERT_TRUE(stmt.is_ok());
  ASSERT_EQ(stmt.value().kind, Statement::Kind::kCreateAction);
  const CreateActionStmt& action = stmt.value().create_action;
  EXPECT_EQ(action.name, "sendphoto");
  ASSERT_EQ(action.params.size(), 2u);
  EXPECT_EQ(action.params[0].type_name, "String");
  EXPECT_EQ(action.params[0].name, "phone_no");
  EXPECT_EQ(action.library_path, "lib/users/sendphoto.dll");
  EXPECT_EQ(action.profile_path, "profiles/users/sendphoto.xml");
}

TEST(ParserTest, ParsesSelectAndDrop) {
  auto select = parse("SELECT s.id, s.temp FROM sensor s WHERE s.temp > 25;");
  ASSERT_TRUE(select.is_ok());
  EXPECT_EQ(select.value().kind, Statement::Kind::kSelect);
  EXPECT_EQ(select.value().select.select_list.size(), 2u);

  auto star = parse("SELECT * FROM sensor");
  ASSERT_TRUE(star.is_ok());
  EXPECT_EQ(star.value().select.from[0].alias, "sensor");  // default alias

  auto drop = parse("DROP AQ snapshot");
  ASSERT_TRUE(drop.is_ok());
  EXPECT_EQ(drop.value().kind, Statement::Kind::kDropAq);
  EXPECT_EQ(drop.value().drop_aq.name, "snapshot");
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(parse("CREATE TABLE t (x int)").is_ok());
  EXPECT_FALSE(parse("SELECT FROM t").is_ok());
  EXPECT_FALSE(parse("SELECT x").is_ok());                       // no FROM
  EXPECT_FALSE(parse("SELECT x FROM t WHERE").is_ok());          // empty WHERE
  EXPECT_FALSE(parse("CREATE AQ q AS SELECT x FROM t extra junk").is_ok());
  EXPECT_FALSE(parse("CREATE ACTION a(String) AS \"l\" PROFILE \"p\"").is_ok());
  EXPECT_FALSE(parse("CREATE ACTION a() AS lib PROFILE \"p\"").is_ok());
  EXPECT_FALSE(parse("DROP AQ").is_ok());
  EXPECT_FALSE(parse("").is_ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = parse_expression("a + b * c > 10 AND NOT flag OR done");
  ASSERT_TRUE(e.is_ok());
  // ((((a + (b*c)) > 10) AND (NOT flag)) OR done)
  EXPECT_EQ(e.value()->to_string(),
            "((((a + (b * c)) > 10) AND (NOT flag)) OR done)");
  // Parenthesized grouping wins.
  auto g = parse_expression("(a + b) * c");
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g.value()->to_string(), "((a + b) * c)");
}

TEST(ParserTest, UnaryMinusAndLiterals) {
  auto e = parse_expression("-5 + 2.5");
  ASSERT_TRUE(e.is_ok());
  auto t = parse_expression("TRUE AND NOT FALSE");
  ASSERT_TRUE(t.is_ok());
  auto n = parse_expression("x = NULL");
  ASSERT_TRUE(n.is_ok());
}

TEST(ParserTest, CloneProducesEqualTree) {
  auto e = parse_expression("f(a.b, 1 + 2) >= g()");
  ASSERT_TRUE(e.is_ok());
  ExprPtr copy = e.value()->clone();
  EXPECT_EQ(copy->to_string(), e.value()->to_string());
}

// ---------------------------------------------------------- expr evaluation

struct EvalFixture : public ::testing::Test {
  EvalFixture()
      : schema("sensor", {{"id", device::AttrType::kString, false},
                          {"accel_x", device::AttrType::kDouble, true},
                          {"temp", device::AttrType::kDouble, true}}),
        tuple(&schema, "m1") {
    tuple.set_by_name("id", Value{std::string("m1")});
    tuple.set_by_name("accel_x", Value{600.0});
    // temp left NULL
    env.bind("s", &tuple);
    (void)functions.add("twice", [](const std::vector<Value>& args) {
      double x = 0;
      device::value_as_double(args.at(0), &x);
      return util::Result<Value>(Value{2 * x});
    });
  }

  Value eval_str(const std::string& text) {
    auto e = parse_expression(text);
    EXPECT_TRUE(e.is_ok()) << text;
    auto v = eval(*e.value(), env, functions);
    EXPECT_TRUE(v.is_ok()) << text << ": " << v.status().to_string();
    return v.is_ok() ? v.value() : Value{};
  }

  bool pred(const std::string& text) {
    auto e = parse_expression(text);
    EXPECT_TRUE(e.is_ok()) << text;
    return eval_predicate(*e.value(), env, functions);
  }

  comm::Schema schema;
  comm::Tuple tuple;
  Env env;
  FunctionRegistry functions;
};

TEST_F(EvalFixture, ColumnResolutionQualifiedAndBare) {
  EXPECT_TRUE(device::value_equal(eval_str("s.accel_x"), Value{600.0}));
  EXPECT_TRUE(device::value_equal(eval_str("accel_x"), Value{600.0}));
  auto unknown = parse_expression("s.nope");
  auto v = eval(*unknown.value(), env, functions);
  ASSERT_TRUE(v.is_ok());  // unknown column on a bound tuple is NULL
  EXPECT_TRUE(std::holds_alternative<std::monostate>(v.value()));
  auto unbound = parse_expression("zz.accel_x");
  EXPECT_FALSE(eval(*unbound.value(), env, functions).is_ok());
}

TEST_F(EvalFixture, ComparisonsAndArithmetic) {
  EXPECT_TRUE(pred("s.accel_x > 500"));
  EXPECT_FALSE(pred("s.accel_x > 700"));
  EXPECT_TRUE(pred("s.accel_x + 100 = 700"));
  EXPECT_TRUE(pred("s.accel_x / 2 = 300"));
  EXPECT_TRUE(pred("s.id = 'm1'"));
  EXPECT_TRUE(pred("s.id <> 'm2'"));
  EXPECT_TRUE(pred("'abc' < 'abd'"));
}

TEST_F(EvalFixture, NullSemantics) {
  // temp is NULL: comparisons are false, so is the negated comparison's
  // operand relation, and arithmetic propagates NULL.
  EXPECT_FALSE(pred("s.temp > 0"));
  EXPECT_FALSE(pred("s.temp = 0"));
  EXPECT_FALSE(pred("s.temp <> 0"));
  auto v = eval_str("s.temp + 1");
  EXPECT_TRUE(std::holds_alternative<std::monostate>(v));
  EXPECT_FALSE(pred("s.temp + 1 > 0"));
  // Division by zero is NULL, not a crash.
  auto dz = eval_str("1 / 0");
  EXPECT_TRUE(std::holds_alternative<std::monostate>(dz));
}

TEST_F(EvalFixture, LogicShortCircuits) {
  EXPECT_TRUE(pred("TRUE OR zz.boom"));    // rhs never evaluated
  EXPECT_FALSE(pred("FALSE AND zz.boom"));
  EXPECT_TRUE(pred("NOT FALSE"));
  EXPECT_TRUE(pred("s.accel_x > 500 AND s.id = 'm1'"));
}

TEST_F(EvalFixture, FunctionsAndErrors) {
  EXPECT_TRUE(device::value_equal(eval_str("twice(21)"), Value{42.0}));
  EXPECT_TRUE(pred("twice(s.accel_x) = 1200"));
  auto unknown_fn = parse_expression("warp(1)");
  EXPECT_FALSE(eval(*unknown_fn.value(), env, functions).is_ok());
  EXPECT_FALSE(pred("warp(1)"));  // predicate: error collapses to false
}

TEST_F(EvalFixture, StringConcatenation) {
  EXPECT_TRUE(device::value_equal(eval_str("'a' + 'b'"),
                                  Value{std::string("ab")}));
}

// ---------------------------------------------------------------- compile

struct CompileFixture : public ::testing::Test {
  CompileFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)) {
    (void)registry.register_type(devices::camera_type_info());
    (void)registry.register_type(devices::sensor_type_info());
    (void)registry.register_type(devices::phone_type_info());

    // Minimal photo action for binding checks.
    ActionDef photo;
    photo.name = "photo";
    photo.params = {{device::AttrType::kString, "camera_ip"},
                    {device::AttrType::kLocation, "location"},
                    {device::AttrType::kString, "directory"}};
    photo.device_type = "camera";
    photo.binding_param = 0;
    photo.binding_attr = "ip";
    photo.profile = sched::PhotoCostModel::make_photo_profile();
    photo.cost_model = std::shared_ptr<const sched::CostModel>(
        sched::PhotoCostModel::axis2130().release());
    (void)catalog.register_action(std::move(photo));
  }

  util::Result<CompiledQuery> compile_sql(const std::string& sql) {
    auto stmt = parse(sql);
    EXPECT_TRUE(stmt.is_ok()) << stmt.status().to_string();
    const SelectStmt& select = stmt.value().kind == Statement::Kind::kCreateAq
                                   ? stmt.value().create_aq.select
                                   : stmt.value().select;
    return compile(select, catalog, registry);
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  Catalog catalog;
};

TEST_F(CompileFixture, SnapshotQueryCompilesAsPaperDescribes) {
  auto q = compile_sql(
      "CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, 'photos/admin') "
      "FROM sensor s, camera c "
      "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)");
  ASSERT_TRUE(q.is_ok()) << q.status().to_string();
  const CompiledQuery& compiled = q.value();
  EXPECT_EQ(compiled.event_alias, "s");
  EXPECT_TRUE(compiled.edge_triggered);
  ASSERT_EQ(compiled.event_predicates.size(), 1u);
  EXPECT_EQ(compiled.event_predicates[0]->to_string(), "(s.accel_x > 500)");
  ASSERT_EQ(compiled.join_predicates.size(), 1u);
  ASSERT_EQ(compiled.actions.size(), 1u);
  EXPECT_EQ(compiled.actions[0].action->name, "photo");
  EXPECT_EQ(compiled.actions[0].candidate_alias, "c");
  // Projection pushdown: the sensor scan needs accel_x and loc only.
  ASSERT_TRUE(compiled.needed_attrs.count("s"));
  EXPECT_TRUE(compiled.needed_attrs.at("s").count("accel_x"));
  EXPECT_TRUE(compiled.needed_attrs.at("s").count("loc"));
  EXPECT_FALSE(compiled.needed_attrs.at("s").count("temp"));
}

TEST_F(CompileFixture, SingleTableActionBindsEventDevice) {
  // beep-style action on the event table itself.
  ActionDef beep;
  beep.name = "beep";
  beep.params = {{device::AttrType::kString, "sensor_id"}};
  beep.device_type = "sensor";
  beep.profile = device::ActionProfile(
      "beep", "sensor", device::ActionProfileNode::op("beep"));
  beep.cost_model = std::make_shared<sched::FixedCostModel>();
  (void)catalog.register_action(std::move(beep));

  auto q = compile_sql(
      "CREATE AQ a AS SELECT beep(s.id) FROM sensor s WHERE s.temp > 28");
  ASSERT_TRUE(q.is_ok()) << q.status().to_string();
  EXPECT_EQ(q.value().actions[0].candidate_alias, "s");
  EXPECT_TRUE(q.value().edge_triggered);
}

TEST_F(CompileFixture, LevelTriggeredWhenNoSensoryPredicate) {
  auto q = compile_sql("SELECT s.id FROM sensor s WHERE s.id = 'm1'");
  ASSERT_TRUE(q.is_ok());
  EXPECT_FALSE(q.value().edge_triggered);
  EXPECT_EQ(q.value().event_alias, "s");
}

TEST_F(CompileFixture, RejectsBadQueries) {
  // Unknown table.
  EXPECT_FALSE(compile_sql("SELECT x FROM spaceship s").is_ok());
  // Three tables.
  EXPECT_FALSE(
      compile_sql("SELECT s.id FROM sensor s, camera c, phone p").is_ok());
  // Duplicate alias.
  EXPECT_FALSE(compile_sql("SELECT s.id FROM sensor s, camera s").is_ok());
  // Wrong action arity.
  EXPECT_FALSE(compile_sql("CREATE AQ a AS SELECT photo(c.ip) "
                           "FROM sensor s, camera c WHERE s.accel_x > 1")
                   .is_ok());
  // Action device type mismatch: photo's binding arg references the sensor.
  EXPECT_FALSE(compile_sql(
                   "CREATE AQ a AS SELECT photo(s.id, s.loc, 'd') "
                   "FROM sensor s, camera c WHERE s.accel_x > 1")
                   .is_ok());
  // Sensory predicate on the candidate table.
  EXPECT_FALSE(compile_sql(
                   "CREATE AQ a AS SELECT photo(c.ip, s.loc, 'd') "
                   "FROM sensor s, camera c "
                   "WHERE s.accel_x > 1 AND c.zoom > 2")
                   .is_ok());
  // Two tables with sensory predicates on both.
  EXPECT_FALSE(compile_sql("SELECT s.id FROM sensor s, camera c "
                           "WHERE s.accel_x > 1 AND c.pan > 0")
                   .is_ok());
  // Unknown column.
  EXPECT_FALSE(compile_sql("SELECT s.id FROM sensor s WHERE s.vibe > 1").is_ok());
}

TEST_F(CompileFixture, UnknownFunctionInSelectListBecomesProjection) {
  // Non-action function calls stay projections (evaluated per row).
  auto q = compile_sql("SELECT distance(s.loc, s.loc) FROM sensor s");
  ASSERT_TRUE(q.is_ok());
  EXPECT_TRUE(q.value().actions.empty());
  EXPECT_EQ(q.value().projections.size(), 1u);
}

}  // namespace
}  // namespace aorta::query
