// Predicate index (query/predicate_index.h) unit + differential tests.
//
// The index answers "which registered AQ predicates might this tuple
// satisfy?" — a candidate *superset*: exactness is the compiler's
// business (IndexableConjunct::exact). These tests pin
//   1. each entry kind round-trips add -> probe -> remove,
//   2. the interval treap matches a brute-force scan under heavy churn
//      (and its shape is handle-deterministic, never pointer-dependent),
//   3. value coercion at probe time mirrors compare_values(): bool/int
//      compare as doubles, NULL / location / NaN satisfy nothing,
//      strings only reach string-equality buckets,
//   4. a 10k+ generated-predicate differential: compiling random WHERE
//      clauses through the real parser + compile pass, inserting their
//      distilled conjuncts, and checking — over randomized tuples with
//      NULLs and degraded markers — that index-pruned evaluation fires
//      exactly the AQ set exhaustive evaluation fires.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "devices/camera.h"
#include "devices/mote.h"
#include "devices/phone.h"
#include "query/compile.h"
#include "query/parser.h"
#include "query/predicate_index.h"
#include "util/rng.h"

namespace aorta::query {
namespace {

using device::Value;
using Handle = PredicateIndex::Handle;

IndexableConjunct make(IndexableConjunct::Kind kind, std::uint32_t slot,
                       double lo, double hi, bool lo_strict = false,
                       bool hi_strict = false) {
  IndexableConjunct c;
  c.kind = kind;
  c.slot = slot;
  c.lo = lo;
  c.hi = hi;
  c.lo_strict = lo_strict;
  c.hi_strict = hi_strict;
  return c;
}

comm::Schema two_slot_schema() {
  return comm::Schema("probe", {{"v", device::AttrType::kDouble, true},
                                {"name", device::AttrType::kString, false}});
}

std::vector<Handle> probe_sorted(const PredicateIndex& idx,
                                 const comm::Tuple& t) {
  std::vector<Handle> out;
  idx.probe(t, &out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PredicateIndexTest, EachKindRoundTripsAddProbeRemove) {
  comm::Schema schema = two_slot_schema();
  PredicateIndex idx;

  IndexableConjunct point = make(IndexableConjunct::Kind::kPointEq, 0, 5, 5);
  IndexableConjunct lower =
      make(IndexableConjunct::Kind::kLower, 0, 10, 0, /*lo_strict=*/true);
  IndexableConjunct lower_incl = make(IndexableConjunct::Kind::kLower, 0, 10, 0);
  IndexableConjunct upper =
      make(IndexableConjunct::Kind::kUpper, 0, 0, 3, false, /*hi_strict=*/true);
  IndexableConjunct range = make(IndexableConjunct::Kind::kRange, 0, 2, 4,
                                 /*lo_strict=*/false, /*hi_strict=*/true);
  IndexableConjunct never = make(IndexableConjunct::Kind::kNever, 0, 0, 0);
  IndexableConjunct streq = make(IndexableConjunct::Kind::kStrEq, 1, 0, 0);
  streq.str = "abc";

  idx.add(1, &point);
  idx.add(2, &lower);
  idx.add(3, &lower_incl);
  idx.add(4, &upper);
  idx.add(5, &range);
  idx.add(6, &never);
  idx.add(7, &streq);
  idx.add(8, nullptr);  // opaque predicate: residual list
  EXPECT_EQ(idx.size(), 8u);
  EXPECT_EQ(idx.residual_size(), 1u);
  EXPECT_EQ(idx.never_size(), 1u);
  ASSERT_EQ(idx.residuals().size(), 1u);
  EXPECT_EQ(idx.residuals()[0], 8u);

  comm::Tuple t(&schema, "d");
  t.set_by_name("v", Value{5.0});
  t.set_by_name("name", Value{std::string("abc")});
  // v == 5: point eq hits, strict > 10 misses, >= 10 misses, < 3 misses,
  // [2, 4) misses, string bucket hits via the other slot.
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{1, 7}));

  t.set_by_name("v", Value{10.0});
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{3, 7}));  // >= only
  t.set_by_name("v", Value{11.0});
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{2, 3, 7}));
  t.set_by_name("v", Value{2.0});
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{4, 5, 7}));
  t.set_by_name("v", Value{4.0});  // half-open range excludes its hi
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{7}));

  // Remove everything; the index must forget all of it.
  idx.remove(1, &point);
  idx.remove(2, &lower);
  idx.remove(3, &lower_incl);
  idx.remove(4, &upper);
  idx.remove(5, &range);
  idx.remove(6, &never);
  idx.remove(7, &streq);
  idx.remove(8, nullptr);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.residual_size(), 0u);
  EXPECT_EQ(idx.never_size(), 0u);
  t.set_by_name("v", Value{5.0});
  EXPECT_TRUE(probe_sorted(idx, t).empty());
}

TEST(PredicateIndexTest, ProbeCoercionMirrorsCompareValues) {
  comm::Schema schema = two_slot_schema();
  PredicateIndex idx;
  IndexableConjunct lower = make(IndexableConjunct::Kind::kLower, 0, 0.5, 0);
  IndexableConjunct streq = make(IndexableConjunct::Kind::kStrEq, 0, 0, 0);
  streq.str = "1";
  idx.add(1, &lower);
  idx.add(2, &streq);

  comm::Tuple t(&schema, "d");
  // NULL satisfies nothing.
  EXPECT_TRUE(probe_sorted(idx, t).empty());
  // bool true coerces to 1.0 >= 0.5.
  t.set_by_name("v", Value{true});
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{1}));
  // int coerces too.
  t.set_by_name("v", Value{std::int64_t{3}});
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{1}));
  // A string value reaches only the string bucket — "1" is NOT 1.0.
  t.set_by_name("v", Value{std::string("1")});
  EXPECT_EQ(probe_sorted(idx, t), (std::vector<Handle>{2}));
  // Locations never satisfy a scalar constraint.
  t.set_by_name("v", Value{device::Location{1, 2, 3}});
  EXPECT_TRUE(probe_sorted(idx, t).empty());
  // NaN compares false against everything.
  t.set_by_name("v", Value{std::nan("")});
  EXPECT_TRUE(probe_sorted(idx, t).empty());
}

// Brute-force oracle for the interval treap: a flat list of ranges.
struct RangeOracle {
  struct Entry {
    Handle handle;
    IndexableConjunct c;
  };
  std::vector<Entry> entries;

  std::vector<Handle> probe(double x) const {
    std::vector<Handle> out;
    for (const auto& e : entries) {
      bool lo_ok = x > e.c.lo || (x == e.c.lo && !e.c.lo_strict);
      bool hi_ok = x < e.c.hi || (x == e.c.hi && !e.c.hi_strict);
      if (lo_ok && hi_ok) out.push_back(e.handle);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST(PredicateIndexTest, IntervalTreapSurvivesChurnAgainstBruteForce) {
  comm::Schema schema = two_slot_schema();
  util::Rng rng(20260808);
  PredicateIndex idx;
  RangeOracle oracle;
  std::vector<std::unique_ptr<IndexableConjunct>> owned;
  Handle next = 1;

  comm::Tuple t(&schema, "d");
  auto check = [&] {
    for (int i = 0; i < 8; ++i) {
      double x = std::floor(rng.uniform(-4, 24) * 2.0) / 2.0;  // hits bounds
      t.set_by_name("v", Value{x});
      EXPECT_EQ(probe_sorted(idx, t), oracle.probe(x)) << "x=" << x;
    }
  };

  for (int round = 0; round < 200; ++round) {
    // Mostly inserts early, mostly removals late: full lifecycle.
    bool insert = oracle.entries.empty() ||
                  rng.uniform(0, 1) < (round < 120 ? 0.7 : 0.3);
    if (insert) {
      double a = std::floor(rng.uniform(0, 20));
      double b = a + std::floor(rng.uniform(0, 6));
      auto c = std::make_unique<IndexableConjunct>(
          make(IndexableConjunct::Kind::kRange, 0, a, b,
               rng.uniform(0, 1) < 0.5, rng.uniform(0, 1) < 0.5));
      idx.add(next, c.get());
      oracle.entries.push_back({next, *c});
      owned.push_back(std::move(c));
      ++next;
    } else {
      std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0, static_cast<double>(oracle.entries.size())));
      pick = std::min(pick, oracle.entries.size() - 1);
      RangeOracle::Entry victim = oracle.entries[pick];
      idx.remove(victim.handle, &victim.c);
      oracle.entries.erase(oracle.entries.begin() +
                           static_cast<std::ptrdiff_t>(pick));
    }
    check();
  }
  // Drain completely; the slot map must empty out with it.
  while (!oracle.entries.empty()) {
    RangeOracle::Entry victim = oracle.entries.back();
    idx.remove(victim.handle, &victim.c);
    oracle.entries.pop_back();
  }
  EXPECT_EQ(idx.size(), 0u);
  t.set_by_name("v", Value{3.0});
  EXPECT_TRUE(probe_sorted(idx, t).empty());
}

// ------------------------------------------------- generated differential

// Compiles randomized WHERE clauses through the real front end and checks
// indexed matching against exhaustive matching over randomized tuples.
struct IndexDiffFixture : public ::testing::Test {
  IndexDiffFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)) {
    (void)registry.register_type(devices::sensor_type_info());
    (void)registry.register_type(devices::camera_type_info());
  }

  util::Result<CompiledQuery> compile_where(const std::string& where) {
    auto stmt =
        parse("CREATE AQ g AS SELECT s.id FROM sensor s WHERE " + where);
    EXPECT_TRUE(stmt.is_ok()) << where;
    return compile(stmt.value().create_aq.select, catalog, registry,
                   /*one_shot=*/false);
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  Catalog catalog;
};

// Small palette so generated constants frequently collide with generated
// tuple values: the boundary cases (x == bound, strict vs inclusive) are
// where an index goes subtly wrong.
const double kNums[] = {-5, -1, 0, 0.5, 1, 2, 3, 5, 10, 42.5};
const char* kIds[] = {"m0", "m1", "m2", "zz"};
const char* kDoubleAttrs[] = {"accel_x", "accel_y", "light", "temp",
                              "battery_v"};
const char* kOps[] = {">", "<", ">=", "<=", "=", "!="};

std::string gen_conjunct(util::Rng& rng) {
  double roll = rng.uniform(0, 1);
  auto num = [&] {
    return std::to_string(kNums[static_cast<int>(rng.uniform(0, 10))]);
  };
  auto attr = [&] {
    return std::string("s.") + kDoubleAttrs[static_cast<int>(rng.uniform(0, 5))];
  };
  if (roll < 0.55) {  // indexable numeric comparison (!= stays residual)
    return attr() + " " + kOps[static_cast<int>(rng.uniform(0, 6))] + " " +
           num();
  }
  if (roll < 0.65) {  // const-on-the-left flavour
    return num() + " " + kOps[static_cast<int>(rng.uniform(0, 6))] + " " +
           attr();
  }
  if (roll < 0.75) {  // string equality / inequality on the id column
    return std::string("s.id ") + (rng.uniform(0, 1) < 0.7 ? "=" : "!=") +
           " '" + kIds[static_cast<int>(rng.uniform(0, 4))] + "'";
  }
  if (roll < 0.85) {  // int column, coerced comparison
    return "s.hops " + std::string(kOps[static_cast<int>(rng.uniform(0, 6))]) +
           " " + std::to_string(static_cast<int>(rng.uniform(0, 4)));
  }
  // Opaque arithmetic: no hint, residual-list entry.
  return "(" + attr() + " + " + attr() + ") > " + num();
}

TEST_F(IndexDiffFixture, TenThousandGeneratedPredicatesMatchExhaustive) {
  util::Rng rng(77);
  PredicateIndex idx;
  std::vector<std::unique_ptr<CompiledQuery>> queries;  // handle = index
  std::set<IndexableConjunct::Kind> kinds_seen;
  std::size_t residual_count = 0;

  constexpr int kQueries = 10500;
  for (int i = 0; i < kQueries; ++i) {
    int n = 1 + static_cast<int>(rng.uniform(0, 3));
    std::string where = gen_conjunct(rng);
    for (int j = 1; j < n; ++j) where += " AND " + gen_conjunct(rng);
    auto q = compile_where(where);
    ASSERT_TRUE(q.is_ok()) << where << ": " << q.status().to_string();
    auto owned = std::make_unique<CompiledQuery>(std::move(q.value()));
    // Every generated predicate must be on the compiled fast path, so the
    // exhaustive oracle below can run programs only.
    for (const auto& p : owned->event_programs) {
      ASSERT_TRUE(p.has_value()) << where;
    }
    const IndexableConjunct* c =
        owned->index_conjunct ? &*owned->index_conjunct : nullptr;
    if (c == nullptr) {
      ++residual_count;
    } else {
      kinds_seen.insert(c->kind);
    }
    idx.add(static_cast<Handle>(queries.size()), c);
    queries.push_back(std::move(owned));
  }
  ASSERT_GE(queries.size(), 10000u);
  // The generator must have exercised every entry kind plus the residual
  // list, or the differential below proves less than it claims.
  EXPECT_GT(residual_count, 0u);
  for (auto kind :
       {IndexableConjunct::Kind::kNever, IndexableConjunct::Kind::kPointEq,
        IndexableConjunct::Kind::kStrEq, IndexableConjunct::Kind::kLower,
        IndexableConjunct::Kind::kUpper, IndexableConjunct::Kind::kRange}) {
    EXPECT_TRUE(kinds_seen.count(kind))
        << "kind " << static_cast<int>(kind) << " never generated";
  }

  // All queries share the sensor schema; slot layout is identical, so one
  // query's owned schema can type every probe tuple.
  const comm::Schema* schema = &queries[0]->schemas.at("s");
  ASSERT_EQ(schema->table_name(), "sensor");

  for (int trial = 0; trial < 60; ++trial) {
    comm::Tuple t(schema, kIds[static_cast<int>(rng.uniform(0, 4))]);
    for (const auto& f : schema->fields()) {
      if (rng.uniform(0, 1) < 0.2) continue;  // leave NULL
      switch (f.type) {
        case device::AttrType::kString:
          t.set_by_name(f.name,
                        Value{std::string(
                            kIds[static_cast<int>(rng.uniform(0, 4))])});
          break;
        case device::AttrType::kInt:
          t.set_by_name(f.name, Value{static_cast<std::int64_t>(
                                    rng.uniform(0, 4))});
          break;
        case device::AttrType::kDouble:
          t.set_by_name(f.name,
                        Value{kNums[static_cast<int>(rng.uniform(0, 10))]});
          break;
        default:
          break;  // locations stay NULL
      }
    }
    // Degraded tuples (stale-cache fills after partial read failures) are
    // matched like any other row; the marker must not perturb candidacy.
    if (trial % 5 == 0) t.set_degraded(true);

    std::vector<Handle> cands;
    idx.probe(t, &cands);
    std::sort(cands.begin(), cands.end());

    BindingFrame frame;
    for (std::size_t h = 0; h < queries.size(); ++h) {
      const CompiledQuery& q = *queries[h];
      frame.size = q.binding_aliases.size();
      frame.set(q.event_binding, &t);
      auto run_all = [&] {
        for (const auto& p : q.event_programs) {
          if (!p->run_predicate(frame)) return false;
        }
        return true;
      };
      bool exhaustive = run_all();
      bool indexed;
      if (!q.index_conjunct) {
        indexed = run_all();  // residual list: always evaluated
      } else if (!std::binary_search(cands.begin(), cands.end(),
                                     static_cast<Handle>(h))) {
        indexed = false;  // pruned
      } else {
        indexed = q.index_conjunct->exact ? true : run_all();
      }
      ASSERT_EQ(indexed, exhaustive)
          << "query " << h << " degraded=" << t.degraded();
    }
  }

  // Tear the whole population down in shuffled order: the index must
  // return to empty, exercising removal across every kind at scale.
  std::vector<std::size_t> order(queries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<double>(i)));
    j = std::min(j, i - 1);
    std::swap(order[i - 1], order[j]);
  }
  for (std::size_t h : order) {
    const CompiledQuery& q = *queries[h];
    idx.remove(static_cast<Handle>(h),
               q.index_conjunct ? &*q.index_conjunct : nullptr);
  }
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.residual_size(), 0u);
  EXPECT_EQ(idx.never_size(), 0u);
}

}  // namespace
}  // namespace aorta::query
