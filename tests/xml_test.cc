// Tests for the XML parser and the XML-backed device/action profiles.
#include <gtest/gtest.h>

#include "device/profile.h"
#include "util/xml.h"

namespace aorta {
namespace {

using util::xml_parse;

TEST(XmlTest, ParsesElementsAttributesAndText) {
  auto doc = xml_parse("<root a=\"1\" b='two'><child>hello</child></root>");
  ASSERT_TRUE(doc.is_ok());
  const util::XmlNode& root = *doc.value();
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.attr("a"), "1");
  EXPECT_EQ(root.attr("b"), "two");
  EXPECT_EQ(root.attr("missing", "dflt"), "dflt");
  ASSERT_NE(root.child("child"), nullptr);
  EXPECT_EQ(root.child("child")->text, "hello");
}

TEST(XmlTest, ParsesSelfClosingAndNesting) {
  auto doc = xml_parse("<a><b/><b x=\"1\"/><c><d/></c></a>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value()->children_named("b").size(), 2u);
  ASSERT_NE(doc.value()->child("c"), nullptr);
  EXPECT_NE(doc.value()->child("c")->child("d"), nullptr);
}

TEST(XmlTest, SkipsDeclarationAndComments) {
  auto doc = xml_parse(
      "<?xml version=\"1.0\"?><!-- profile --><root><!-- inner -->"
      "<x/></root><!-- trailing -->");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value()->children.size(), 1u);
}

TEST(XmlTest, DecodesEntities) {
  auto doc = xml_parse("<r v=\"a&lt;b&amp;c&gt;d\">x&quot;y&apos;z</r>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc.value()->attr("v"), "a<b&c>d");
  EXPECT_EQ(doc.value()->text, "x\"y'z");
}

TEST(XmlTest, NumericAttributeHelpers) {
  auto doc = xml_parse("<r d=\"3.25\" i=\"42\" bad=\"xyz\"/>");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_DOUBLE_EQ(doc.value()->attr_double("d"), 3.25);
  EXPECT_EQ(doc.value()->attr_int("i"), 42);
  EXPECT_DOUBLE_EQ(doc.value()->attr_double("bad", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc.value()->attr_double("absent", 9.0), 9.0);
}

TEST(XmlTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(xml_parse("<a><b></a></b>").is_ok());  // mismatched close
  EXPECT_FALSE(xml_parse("<a>").is_ok());             // missing close
  EXPECT_FALSE(xml_parse("<a x=1/>").is_ok());        // unquoted attribute
  EXPECT_FALSE(xml_parse("<a/><b/>").is_ok());        // two roots
  EXPECT_FALSE(xml_parse("plain text").is_ok());
  EXPECT_FALSE(xml_parse("<a b=\"unterminated/>").is_ok());
}

TEST(XmlTest, RoundTripsThroughToString) {
  auto doc = xml_parse("<r a=\"1\"><c t=\"x&amp;y\"/><c/></r>");
  ASSERT_TRUE(doc.is_ok());
  auto again = xml_parse(doc.value()->to_string());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value()->attr("a"), "1");
  ASSERT_EQ(again.value()->children.size(), 2u);
  EXPECT_EQ(again.value()->children[0]->attr("t"), "x&y");
}

// ---------------------------------------------------------- device catalog

TEST(DeviceCatalogTest, RoundTrip) {
  device::DeviceCatalog catalog(
      "sensor", {{"accel_x", device::AttrType::kDouble, true, "read_attr",
                  "mg", "x acceleration"},
                 {"loc", device::AttrType::kLocation, false, "", "m", "pos"}});
  auto parsed = device::DeviceCatalog::from_xml(catalog.to_xml());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().type_id(), "sensor");
  ASSERT_EQ(parsed.value().attrs().size(), 2u);
  const device::AttrSpec* accel = parsed.value().find("accel_x");
  ASSERT_NE(accel, nullptr);
  EXPECT_TRUE(accel->sensory);
  EXPECT_EQ(accel->unit, "mg");
  const device::AttrSpec* loc = parsed.value().find("loc");
  ASSERT_NE(loc, nullptr);
  EXPECT_FALSE(loc->sensory);
  EXPECT_EQ(loc->type, device::AttrType::kLocation);
}

TEST(DeviceCatalogTest, RejectsBadDocuments) {
  EXPECT_FALSE(device::DeviceCatalog::from_xml("<nope/>").is_ok());
  EXPECT_FALSE(device::DeviceCatalog::from_xml("<catalog/>").is_ok());
  EXPECT_FALSE(device::DeviceCatalog::from_xml(
                   "<catalog device_type=\"x\"><attribute/></catalog>")
                   .is_ok());
  EXPECT_FALSE(device::DeviceCatalog::from_xml(
                   "<catalog device_type=\"x\">"
                   "<attribute name=\"a\" type=\"alien\"/></catalog>")
                   .is_ok());
}

// ------------------------------------------------------- atomic op costs

TEST(AtomicOpCostTest, CostFormula) {
  device::AtomicOpCost op{"pan", 0.1, 0.02, "degree"};
  EXPECT_DOUBLE_EQ(op.cost_s(0), 0.1);
  EXPECT_DOUBLE_EQ(op.cost_s(50), 1.1);
}

TEST(AtomicOpCostTableTest, RoundTripAndLookup) {
  device::AtomicOpCostTable table("camera");
  ASSERT_TRUE(table.add({"pan", 0.0, 0.0148, "degree"}).is_ok());
  ASSERT_TRUE(table.add({"snap_medium", 0.36, 0.0, ""}).is_ok());
  EXPECT_FALSE(table.add({"pan", 1.0, 0.0, ""}).is_ok());  // duplicate

  auto parsed = device::AtomicOpCostTable::from_xml(table.to_xml());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().type_id(), "camera");
  const device::AtomicOpCost* snap = parsed.value().find("snap_medium");
  ASSERT_NE(snap, nullptr);
  EXPECT_DOUBLE_EQ(snap->fixed_s, 0.36);
  EXPECT_EQ(parsed.value().find("zoom"), nullptr);
}

// --------------------------------------------------------- action profile

device::AtomicOpCostTable camera_costs() {
  device::AtomicOpCostTable table("camera");
  (void)table.add({"pan", 0.0, 0.01, "degree"});
  (void)table.add({"tilt", 0.0, 0.04, "degree"});
  (void)table.add({"snap_medium", 0.36, 0.0, ""});
  return table;
}

TEST(ActionProfileTest, SequentialCostsAdd) {
  using Node = device::ActionProfileNode;
  std::vector<std::unique_ptr<Node>> steps;
  steps.push_back(Node::op("pan", 100));   // 1.0
  steps.push_back(Node::op("snap_medium"));  // 0.36
  device::ActionProfile profile("photo", "camera", Node::seq(std::move(steps)));
  EXPECT_NEAR(profile.estimate_cost_s(camera_costs(), nullptr), 1.36, 1e-9);
}

TEST(ActionProfileTest, ParallelCostsTakeMax) {
  using Node = device::ActionProfileNode;
  std::vector<std::unique_ptr<Node>> axes;
  axes.push_back(Node::op("pan", 100));  // 1.0
  axes.push_back(Node::op("tilt", 10));  // 0.4
  device::ActionProfile profile("aim", "camera", Node::par(std::move(axes)));
  EXPECT_NEAR(profile.estimate_cost_s(camera_costs(), nullptr), 1.0, 1e-9);
}

TEST(ActionProfileTest, DynamicUnitsOverrideDefaults) {
  using Node = device::ActionProfileNode;
  device::ActionProfile profile("pan_only", "camera", Node::op("pan", 100));
  auto units = [](const std::string& op) { return op == "pan" ? 50.0 : -1.0; };
  EXPECT_NEAR(profile.estimate_cost_s(camera_costs(), units), 0.5, 1e-9);
  // A units_for that declines (negative) falls back to the profile default.
  auto decline = [](const std::string&) { return -1.0; };
  EXPECT_NEAR(profile.estimate_cost_s(camera_costs(), decline), 1.0, 1e-9);
}

TEST(ActionProfileTest, UnknownOpContributesZero) {
  using Node = device::ActionProfileNode;
  device::ActionProfile profile("x", "camera", Node::op("warp_drive"));
  EXPECT_DOUBLE_EQ(profile.estimate_cost_s(camera_costs(), nullptr), 0.0);
}

TEST(ActionProfileTest, XmlRoundTrip) {
  using Node = device::ActionProfileNode;
  std::vector<std::unique_ptr<Node>> axes;
  axes.push_back(Node::op("pan"));
  axes.push_back(Node::op("tilt"));
  std::vector<std::unique_ptr<Node>> steps;
  steps.push_back(Node::par(std::move(axes)));
  steps.push_back(Node::op("snap_medium"));
  device::ActionProfile profile("photo", "camera", Node::seq(std::move(steps)),
                                {"pan", "tilt"});

  auto parsed = device::ActionProfile::from_xml(profile.to_xml());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().action_name(), "photo");
  EXPECT_EQ(parsed.value().device_type(), "camera");
  EXPECT_EQ(parsed.value().status_attrs(),
            (std::vector<std::string>{"pan", "tilt"}));
  // Identical estimates before and after the round trip.
  auto units = [](const std::string& op) {
    return op == "pan" ? 80.0 : (op == "tilt" ? 5.0 : -1.0);
  };
  EXPECT_NEAR(parsed.value().estimate_cost_s(camera_costs(), units),
              profile.estimate_cost_s(camera_costs(), units), 1e-12);
}

TEST(ActionProfileTest, FromXmlRejectsBadShapes) {
  EXPECT_FALSE(device::ActionProfile::from_xml("<wrong/>").is_ok());
  EXPECT_FALSE(device::ActionProfile::from_xml(
                   "<action_profile action=\"a\" device_type=\"t\"/>")
                   .is_ok());  // no composition root
  EXPECT_FALSE(device::ActionProfile::from_xml(
                   "<action_profile action=\"a\" device_type=\"t\">"
                   "<seq></seq></action_profile>")
                   .is_ok());  // empty seq
  EXPECT_FALSE(device::ActionProfile::from_xml(
                   "<action_profile action=\"a\" device_type=\"t\">"
                   "<op/></action_profile>")
                   .is_ok());  // op without name
}

}  // namespace
}  // namespace aorta
