// Edge cases across the stack: empty worlds, events nobody can service,
// heavy event-loop stress, and location values in predicates.
#include <gtest/gtest.h>

#include "core/aorta.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;
using util::TimePoint;

TEST(EdgeCaseTest, QueryOverEmptyWorldIdlesCleanly) {
  core::Aorta sys(core::Config{});
  // Register the snapshot query with no devices at all.
  ASSERT_TRUE(sys.exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                       "FROM sensor s, camera c "
                       "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys.run_for(Duration::minutes(2));
  const query::QueryStats* qs = sys.query_stats("q");
  ASSERT_NE(qs, nullptr);
  EXPECT_GT(qs->epochs, 100u);  // it kept evaluating
  EXPECT_EQ(qs->events, 0u);
  EXPECT_EQ(sys.stats().network.sent, 0u);  // nothing to talk to

  // One-shot SELECT over the empty table returns zero rows, not an error.
  auto rows = sys.exec("SELECT s.id FROM sensor s");
  ASSERT_TRUE(rows.is_ok());
  EXPECT_TRUE(rows->rows.empty());
}

TEST(EdgeCaseTest, EventWithNoCoveringCandidateIsDroppedSilently) {
  core::Aorta sys(core::Config{.seed = 3});
  // A camera too far away to cover the mote.
  ASSERT_TRUE(
      sys.add_camera("far_cam", "10.0.0.1", {{500, 500, 3}, 0.0}, 10.0).is_ok());
  ASSERT_TRUE(sys.add_mote("m1", {0, 0, 1}).is_ok());
  sys.mote("m1")->reliability().glitch_prob = 0.0;
  auto link = net::LinkModel::mote_radio();
  link.loss_prob = 0.0;
  ASSERT_TRUE(sys.network().set_link("m1", link).is_ok());
  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(TimePoint::from_micros(10'000'000), Duration::seconds(2),
                    900.0);
  (void)sys.mote("m1")->set_signal("accel_x", std::move(script));

  ASSERT_TRUE(sys.exec("CREATE AQ q AS SELECT photo(c.ip, s.loc, 'd') "
                       "FROM sensor s, camera c "
                       "WHERE s.accel_x > 500 AND coverage(c.id, s.loc)")
                  .is_ok());
  sys.run_for(Duration::minutes(1));

  const query::QueryStats* qs = sys.query_stats("q");
  EXPECT_EQ(qs->events, 1u);           // the event fired...
  EXPECT_EQ(qs->requests_issued, 0u);  // ...but no device could serve it
  EXPECT_EQ(sys.camera("far_cam")->camera_stats().photos_ok, 0u);
}

TEST(EdgeCaseTest, LocationEqualityInPredicates) {
  core::Aorta sys(core::Config{});
  ASSERT_TRUE(sys.add_mote("m1", {1, 2, 3}).is_ok());
  ASSERT_TRUE(sys.add_mote("m2", {4, 5, 6}).is_ok());
  for (const char* id : {"m1", "m2"}) {
    sys.mote(id)->reliability().glitch_prob = 0.0;
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    (void)sys.network().set_link(id, link);
  }
  // distance(loc, loc) = 0 picks out the same-device pairs of a self-join.
  auto rows = sys.exec("SELECT s.id, m.id FROM sensor s, sensor m "
                       "WHERE distance(s.loc, m.loc) = 0");
  ASSERT_TRUE(rows.is_ok()) << rows.status().to_string();
  EXPECT_EQ(rows->rows.size(), 2u);  // (m1,m1) and (m2,m2)
}

TEST(EdgeCaseTest, EventLoopStressKeepsChronologicalOrder) {
  util::SimClock clock;
  util::EventLoop loop(&clock);
  util::Rng rng(4242);
  std::vector<std::int64_t> fired_at;
  const int kEvents = 20000;
  for (int i = 0; i < kEvents; ++i) {
    std::int64_t at = rng.uniform_int(0, 1'000'000);
    loop.schedule_at(TimePoint::from_micros(at), [&fired_at, &loop]() {
      fired_at.push_back(loop.now().to_micros());
    });
  }
  // Cancel a random slice.
  std::uint64_t cancelled = 0;
  for (util::EventId id = 2; id < 1000; id += 7) {
    if (loop.cancel(id)) ++cancelled;
  }
  loop.run_all();
  EXPECT_EQ(fired_at.size(), kEvents - cancelled);
  EXPECT_TRUE(std::is_sorted(fired_at.begin(), fired_at.end()));
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EdgeCaseTest, ZeroEpochQueriesShareTheEngineDefault) {
  core::Aorta sys(core::Config{});
  ASSERT_TRUE(sys.add_mote("m1", {0, 0, 1}).is_ok());
  ASSERT_TRUE(
      sys.exec("CREATE AQ a AS SELECT s.id FROM sensor s WHERE s.accel_x > 1")
          .is_ok());
  ASSERT_TRUE(
      sys.exec("CREATE AQ b AS SELECT s.id FROM sensor s WHERE s.accel_x > 1")
          .is_ok());
  sys.run_for(Duration::seconds(30));
  EXPECT_EQ(sys.query_stats("a")->epochs, sys.query_stats("b")->epochs);
  EXPECT_NEAR(static_cast<double>(sys.query_stats("a")->epochs), 30.0, 1.0);
}

TEST(EdgeCaseTest, RunForZeroIsANoop) {
  core::Aorta sys(core::Config{});
  sys.run_for(Duration::zero());
  EXPECT_EQ(sys.loop().now(), TimePoint::origin());
}

}  // namespace
}  // namespace aorta
