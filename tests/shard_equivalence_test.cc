// Sharding must not change what the system computes, and must not cost
// determinism: (1) two same-seed runs at num_shards=4 produce
// byte-identical metrics and trace exports — the merger's (timestamp,
// shard, arrival) order makes cross-shard interleavings canonical; and
// (2) the delivered continuous-row events are identical between
// num_shards=1 and num_shards=4 on a 32-AQ workload over a lossless
// device fabric (the hash partition changes *where* fragments run, not
// *what* they produce).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/aorta.h"
#include "server/service.h"
#include "server/session.h"
#include "shard/plane.h"

namespace aorta {
namespace {

using server::Delivery;
using server::QueryService;
using server::ServiceConfig;
using server::SessionId;
using shard::Plane;
using util::Duration;
using util::TimePoint;

// Exact rendering of a delivered row value (%.17g doubles: the same
// precision contract as the fragment codec).
std::string value_key(const device::Value& v) {
  char buf[96];
  if (std::holds_alternative<std::monostate>(v)) return "null";
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  const auto& loc = std::get<device::Location>(v);
  std::snprintf(buf, sizeof(buf), "(%.17g,%.17g,%.17g)", loc.x, loc.y, loc.z);
  return buf;
}

// One delivered row event, keyed by (query, epoch index, values,
// degraded marker). The epoch index — not the raw timestamp — is the
// comparison key: a row's `at` is the instant its epoch scan completed,
// which can shift by network-latency noise (milliseconds) when the
// device set is split across differently-sized shards, while the epoch
// it belongs to cannot.
std::string event_key(const Delivery& d) {
  std::string key = d.query;
  key += "@" + std::to_string(d.at.to_micros() / 1000000);
  for (const query::Row& row : d.rows) {
    for (const auto& [name, value] : row) {
      key += "|" + name + "=" + value_key(value);
    }
  }
  key += d.degraded ? "|degraded" : "";
  return key;
}

// The shared world: eight motes with staggered periodic accel spikes and
// distinct constant temps, on lossless zero-jitter links (so the RNG —
// whose fork order legitimately differs with the worker count — cannot
// influence any observable value).
void build_world(QueryService& service, core::Aorta& sys) {
  for (int i = 0; i < 8; ++i) {
    std::string id = "m" + std::to_string(i);
    ASSERT_TRUE(service.plane()->add_mote(id, {double(i), 0, 1}).is_ok());
    devices::Mica2Mote* mote = service.plane()->mote(id);
    mote->reliability().glitch_prob = 0.0;
    (void)mote->set_signal("temp", devices::constant_signal(15.0 + i));
    (void)mote->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 900.0, Duration::seconds(4.0),
                                       Duration::seconds(1.2),
                                       Duration::seconds(0.5 * i)));
    (void)sys.network().set_link(id, Plane::backplane());
  }
}

// 32 AQs with varying selectivity: 16 temp thresholds (edge-triggered —
// each fires once per matching mote) + 16 spike watchers (re-fire on
// every spike edge).
void submit_workload(QueryService& service, SessionId id) {
  for (int k = 0; k < 16; ++k) {
    std::string sql = "CREATE AQ temp" + std::to_string(k) +
                      " AS SELECT s.temp FROM sensor s WHERE s.temp > " +
                      std::to_string(10 + k);
    ASSERT_TRUE(service.submit(id, sql).is_ok()) << sql;
  }
  for (int k = 0; k < 16; ++k) {
    std::string sql = "CREATE AQ spike" + std::to_string(k) +
                      " AS SELECT s.accel_x, s.temp FROM sensor s "
                      "WHERE s.accel_x > " +
                      std::to_string(100 + 50 * k);
    ASSERT_TRUE(service.submit(id, sql).is_ok()) << sql;
  }
}

struct RunOutput {
  std::multiset<std::string> events;  // delivered row keys, at < cutoff
  std::string stats_json;
  std::string trace_json;
};

RunOutput run_workload(int num_shards, std::uint64_t seed,
                       double run_s, double cutoff_s) {
  core::Config config;
  config.seed = seed;
  config.tracing = true;
  core::Aorta sys(config);
  ServiceConfig cfg;
  cfg.num_shards = num_shards;
  cfg.mailbox_capacity = 1 << 20;  // keep every delivery for comparison
  QueryService service(&sys, cfg);
  build_world(service, sys);
  SessionId id = service.connect("acme");
  submit_workload(service, id);
  sys.run_for(Duration::seconds(run_s));

  RunOutput out;
  for (const Delivery& d : service.session(id)->drain()) {
    EXPECT_NE(d.kind, Delivery::Kind::kError) << d.message;
    if (d.kind != Delivery::Kind::kRow) continue;
    // Ignore the tail the merge frontier may still be holding back: rows
    // released only after the next heartbeat would make the comparison
    // depend on where the run is cut, not on what was computed.
    if (d.at > TimePoint() + Duration::seconds(cutoff_s)) continue;
    out.events.insert(event_key(d));
  }
  out.stats_json = service.stats_json();
  out.trace_json = sys.trace_json();  // merged across all segment tracers
  return out;
}

TEST(ShardEquivalenceTest, SameSeedRunsAreByteIdenticalAtFourShards) {
  RunOutput a = run_workload(4, 7, 12.0, 12.0);
  RunOutput b = run_workload(4, 7, 12.0, 12.0);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.events, b.events);
  EXPECT_FALSE(a.events.empty());
}

TEST(ShardEquivalenceTest, DeliveredEventsMatchBetweenOneAndFourShards) {
  // Different seeds on purpose: equivalence must come from the lossless
  // world, not from accidentally identical random streams.
  RunOutput one = run_workload(1, 11, 20.0, 15.0);
  RunOutput four = run_workload(4, 13, 20.0, 15.0);

  ASSERT_FALSE(one.events.empty());
  // Every spike edge re-fires all 16 spike AQs on that mote, and every
  // temp AQ fires once per matching mote: 15 sim seconds is hundreds of
  // delivered rows.
  EXPECT_GT(one.events.size(), 400u);
  EXPECT_EQ(one.events, four.events);
}

}  // namespace
}  // namespace aorta
