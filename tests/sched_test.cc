// Tests for the scheduling layer: the cost model, workload generation,
// schedule validation, the five algorithms' correctness properties, and
// comparisons against the exhaustive optimum on tiny instances.
#include <gtest/gtest.h>

#include "sched/algorithms.h"
#include "sched/cost_model.h"
#include "sched/workload.h"

namespace aorta::sched {
namespace {

// --------------------------------------------------------------- cost model

TEST(PhotoCostModelTest, CostIsMovementPlusCapture) {
  auto model = PhotoCostModel::axis2130();
  ActionRequest r;
  r.params = {{"pan", 67.6}, {"tilt", 0.0}, {"zoom", 1.0}};
  DeviceStatus at_rest = {{"pan", 0.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  EXPECT_NEAR(model->cost_s(r, at_rest), 1.0 + 0.36, 1e-9);

  // Already aimed: capture only — the cost floor.
  DeviceStatus aimed = {{"pan", 67.6}, {"tilt", 0.0}, {"zoom", 1.0}};
  EXPECT_NEAR(model->cost_s(r, aimed), 0.36, 1e-9);
}

TEST(PhotoCostModelTest, SlowestAxisDominates) {
  auto model = PhotoCostModel::axis2130();
  ActionRequest r;
  // 10 deg pan (0.148 s) but 50 deg tilt (2 s): tilt sets the move time.
  r.params = {{"pan", 10.0}, {"tilt", -50.0}, {"zoom", 1.0}};
  DeviceStatus at_rest = {{"pan", 0.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  EXPECT_NEAR(model->cost_s(r, at_rest), 2.0 + 0.36, 1e-9);
}

TEST(PhotoCostModelTest, ApplyMovesTheHead) {
  auto model = PhotoCostModel::axis2130();
  ActionRequest r;
  r.params = {{"pan", 50.0}, {"tilt", -20.0}, {"zoom", 2.0}};
  DeviceStatus status = {{"pan", 0.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  model->apply(r, &status);
  EXPECT_DOUBLE_EQ(status.at("pan"), 50.0);
  EXPECT_DOUBLE_EQ(status.at("tilt"), -20.0);
  EXPECT_DOUBLE_EQ(status.at("zoom"), 2.0);
  // Re-estimating the same request after apply costs only the capture.
  EXPECT_NEAR(model->cost_s(r, status), 0.36, 1e-9);
}

TEST(PhotoCostModelTest, SequenceDependence) {
  auto model = PhotoCostModel::axis2130();
  ActionRequest near_r, far_r;
  near_r.params = {{"pan", 10.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  far_r.params = {{"pan", 160.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  DeviceStatus status = {{"pan", 0.0}, {"tilt", 0.0}, {"zoom", 1.0}};
  // near-then-far is cheaper than far-then-near back to near? Total is the
  // same here; what differs is cost *given* status:
  EXPECT_LT(model->cost_s(near_r, status), model->cost_s(far_r, status));
  model->apply(far_r, &status);
  EXPECT_GT(model->cost_s(near_r, status), 0.36 + 1.0);  // long way back
}

TEST(PhotoCostModelTest, ResolvesWorldLocationThroughPose) {
  auto model = PhotoCostModel::axis2130();
  // Device status carries its mounting pose; the request a world location.
  DeviceStatus status = {{"pan", 0.0},  {"tilt", 0.0},  {"zoom", 1.0},
                         {"pose_x", 0.0}, {"pose_y", 0.0}, {"pose_z", 3.0},
                         {"yaw", 0.0}};
  ActionRequest r;
  r.params = {{"target_x", 0.0}, {"target_y", 4.0}, {"target_z", 0.0}};
  // aim_at gives pan 90 deg -> about 90/67.6 s of pan (tilt/zoom smaller
  // contributions may dominate; just require more than capture-only).
  double cost = model->cost_s(r, status);
  EXPECT_GT(cost, 0.36 + 0.5);
  model->apply(r, &status);
  EXPECT_NEAR(status.at("pan"), 90.0, 1e-6);
  // Second shot at the same target from the same camera: capture only.
  EXPECT_NEAR(model->cost_s(r, status), 0.36, 1e-9);
}

TEST(FixedCostModelTest, UsesBaseCostEverywhere) {
  FixedCostModel model;
  ActionRequest r;
  r.base_cost_s = 2.5;
  DeviceStatus any = {{"pan", 99.0}};
  EXPECT_DOUBLE_EQ(model.cost_s(r, any), 2.5);
  model.apply(r, &any);
  EXPECT_DOUBLE_EQ(any.at("pan"), 99.0);  // unchanged
}

TEST(CountingCostTest, CountsEveryEstimate) {
  FixedCostModel model;
  CountingCost counter(&model);
  ActionRequest r;
  r.base_cost_s = 1.0;
  DeviceStatus status;
  for (int i = 0; i < 7; ++i) (void)counter.cost(r, status);
  counter.apply(r, &status);  // apply does not count
  EXPECT_EQ(counter.evals(), 7u);
}

// ----------------------------------------------------------------- workload

TEST(WorkloadTest, InitialCostsSpanThePublishedRange) {
  auto model = PhotoCostModel::axis2130();
  WorkloadSpec spec;
  spec.n_requests = 200;
  spec.n_devices = 10;
  spec.seed = 11;
  Workload w = make_photo_workload(spec);
  ASSERT_EQ(w.requests.size(), 200u);
  ASSERT_EQ(w.devices.size(), 10u);
  double lo = 1e9, hi = 0.0;
  for (const auto& r : w.requests) {
    for (const auto& d : w.devices) {
      double c = model->cost_s(r, d.status);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
      EXPECT_GE(c, kPhotoMinCostS - 1e-9);
      EXPECT_LE(c, kPhotoMaxCostS + 1e-9);
    }
  }
  // The sample should cover most of the [0.36, 5.36] range.
  EXPECT_LT(lo, 1.0);
  EXPECT_GT(hi, 4.0);
}

TEST(WorkloadTest, UniformWorkloadHasFullCandidateSets) {
  WorkloadSpec spec;
  spec.n_requests = 20;
  spec.n_devices = 10;
  Workload w = make_photo_workload(spec);
  for (const auto& r : w.requests) {
    EXPECT_EQ(r.candidates.size(), 10u);
  }
}

TEST(WorkloadTest, SkewRestrictsHalfTheRequests) {
  WorkloadSpec spec;
  spec.n_requests = 20;
  spec.n_devices = 10;
  spec.skewness = 0.3;
  Workload w = make_photo_workload(spec);
  int full = 0, restricted = 0;
  for (const auto& r : w.requests) {
    if (r.candidates.size() == 10u) {
      ++full;
    } else {
      EXPECT_EQ(r.candidates.size(), 3u);  // skew * m
      ++restricted;
    }
  }
  EXPECT_EQ(full, 10);
  EXPECT_EQ(restricted, 10);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadSpec spec;
  spec.seed = 99;
  Workload a = make_photo_workload(spec);
  Workload b = make_photo_workload(spec);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].params.at("pan"), b.requests[i].params.at("pan"));
  }
}

// ------------------------------------------------------ validate_schedule

TEST(ValidateScheduleTest, CatchesViolations) {
  FixedCostModel model;
  std::vector<ActionRequest> requests(2);
  requests[0].id = 1;
  requests[0].base_cost_s = 1.0;
  requests[0].candidates = {"d1"};
  requests[1].id = 2;
  requests[1].base_cost_s = 1.0;
  requests[1].candidates = {"d1"};
  std::vector<SchedDevice> devices(1);
  devices[0].id = "d1";

  ScheduleResult ok;
  ok.items = {{1, "d1", 0.0, 1.0}, {2, "d1", 1.0, 2.0}};
  ok.service_makespan_s = 2.0;
  EXPECT_TRUE(validate_schedule(ok, requests, devices, model).is_ok());

  ScheduleResult overlap = ok;
  overlap.items[1].start_s = 0.5;
  overlap.items[1].finish_s = 1.5;
  overlap.service_makespan_s = 1.5;
  EXPECT_FALSE(validate_schedule(overlap, requests, devices, model).is_ok());

  ScheduleResult missing = ok;
  missing.items.pop_back();
  EXPECT_FALSE(validate_schedule(missing, requests, devices, model).is_ok());

  ScheduleResult ineligible = ok;
  ineligible.items[0].device = "d2";
  EXPECT_FALSE(validate_schedule(ineligible, requests, devices, model).is_ok());

  ScheduleResult wrong_duration = ok;
  wrong_duration.items[0].finish_s = 3.0;  // cost is 1.0
  EXPECT_FALSE(
      validate_schedule(wrong_duration, requests, devices, model).is_ok());

  ScheduleResult wrong_makespan = ok;
  wrong_makespan.service_makespan_s = 9.0;
  EXPECT_FALSE(
      validate_schedule(wrong_makespan, requests, devices, model).is_ok());
}

// ----------------------------------------------------- algorithm behaviour

Workload tiny_workload(std::uint64_t seed, int n = 5, int m = 2) {
  WorkloadSpec spec;
  spec.n_requests = n;
  spec.n_devices = m;
  spec.seed = seed;
  return make_photo_workload(spec);
}

TEST(SchedulerFactoryTest, KnowsAllPaperNamesAndRejectsOthers) {
  for (const auto& name : paper_scheduler_names()) {
    auto s = make_scheduler(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_NE(make_scheduler("OPT"), nullptr);
  EXPECT_EQ(make_scheduler("FIFO"), nullptr);
}

TEST(SchedulerTest, EmptyRequestSetYieldsEmptySchedule) {
  auto model = PhotoCostModel::axis2130();
  Workload w = tiny_workload(1, 0, 3);
  for (const auto& name : paper_scheduler_names()) {
    util::Rng rng(1);
    auto result = make_scheduler(name)->schedule({}, w.devices, *model, rng);
    EXPECT_TRUE(result.items.empty()) << name;
    EXPECT_DOUBLE_EQ(result.service_makespan_s, 0.0) << name;
  }
}

TEST(SchedulerTest, RequestWithNoCandidatesReportedUnassigned) {
  auto model = PhotoCostModel::axis2130();
  Workload w = tiny_workload(2, 3, 2);
  w.requests[1].candidates.clear();
  for (const auto& name : paper_scheduler_names()) {
    util::Rng rng(1);
    auto result =
        make_scheduler(name)->schedule(w.requests, w.devices, *model, rng);
    ASSERT_EQ(result.unassigned.size(), 1u) << name;
    EXPECT_EQ(result.unassigned[0], w.requests[1].id) << name;
    EXPECT_EQ(result.items.size(), 2u) << name;
    EXPECT_TRUE(
        validate_schedule(result, w.requests, w.devices, *model).is_ok())
        << name;
  }
}

TEST(SchedulerTest, CandidatesReferencingUnknownDevicesAreIgnored) {
  auto model = PhotoCostModel::axis2130();
  Workload w = tiny_workload(3, 3, 2);
  // One request can only run on a device that is not in the round.
  w.requests[0].candidates = {"phantom"};
  for (const auto& name : paper_scheduler_names()) {
    util::Rng rng(1);
    auto result =
        make_scheduler(name)->schedule(w.requests, w.devices, *model, rng);
    EXPECT_EQ(result.unassigned.size(), 1u) << name;
    EXPECT_TRUE(
        validate_schedule(result, w.requests, w.devices, *model).is_ok())
        << name;
  }
}

TEST(SchedulerTest, EligibilityRestrictionsRespected) {
  auto model = PhotoCostModel::axis2130();
  WorkloadSpec spec;
  spec.n_requests = 12;
  spec.n_devices = 6;
  spec.skewness = 0.34;  // half the requests restricted to 2 devices
  spec.seed = 5;
  Workload w = make_photo_workload(spec);
  for (const auto& name : paper_scheduler_names()) {
    util::Rng rng(7);
    auto result =
        make_scheduler(name)->schedule(w.requests, w.devices, *model, rng);
    EXPECT_TRUE(
        validate_schedule(result, w.requests, w.devices, *model).is_ok())
        << name;  // validation includes the eligibility check
  }
}

TEST(SchedulerTest, SapVsCapScheduleShapes) {
  // LS (CAP) must service in arrival order per its pick rule; the first
  // eligible request in arrival order goes to the earliest-idle device.
  FixedCostModel model;
  std::vector<ActionRequest> requests(3);
  for (int i = 0; i < 3; ++i) {
    requests[static_cast<std::size_t>(i)].id = static_cast<std::uint64_t>(i + 1);
    requests[static_cast<std::size_t>(i)].base_cost_s = 1.0;
    requests[static_cast<std::size_t>(i)].candidates = {"d1"};
  }
  std::vector<SchedDevice> devices(1);
  devices[0].id = "d1";
  util::Rng rng(1);
  auto result = ListScheduler().schedule(requests, devices, model, rng);
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].request_id, 1u);
  EXPECT_EQ(result.items[1].request_id, 2u);
  EXPECT_EQ(result.items[2].request_id, 3u);
  EXPECT_DOUBLE_EQ(result.service_makespan_s, 3.0);
}

TEST(SrfaeTest, ServicesGloballyCheapestFirst) {
  FixedCostModel model;
  std::vector<ActionRequest> requests(3);
  double costs[3] = {3.0, 1.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    requests[static_cast<std::size_t>(i)].id = static_cast<std::uint64_t>(i + 1);
    requests[static_cast<std::size_t>(i)].base_cost_s = costs[i];
    requests[static_cast<std::size_t>(i)].candidates = {"d1"};
  }
  std::vector<SchedDevice> devices(1);
  devices[0].id = "d1";
  util::Rng rng(1);
  auto result = SrfaeScheduler().schedule(requests, devices, model, rng);
  ASSERT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.items[0].request_id, 2u);  // cost 1
  EXPECT_EQ(result.items[1].request_id, 3u);  // cost 2
  EXPECT_EQ(result.items[2].request_id, 1u);  // cost 3
}

TEST(LerfaTest, LeastEligibleRequestsPlacedBeforeFlexibleOnes) {
  // Two devices. One restricted request can only use d1 and is expensive;
  // flexible requests must route around it. With fixed costs the check is
  // simply that the restricted request landed on its only candidate and
  // the schedule balances.
  FixedCostModel model;
  std::vector<ActionRequest> requests(4);
  for (int i = 0; i < 4; ++i) {
    requests[static_cast<std::size_t>(i)].id = static_cast<std::uint64_t>(i + 1);
    requests[static_cast<std::size_t>(i)].base_cost_s = 1.0;
    requests[static_cast<std::size_t>(i)].candidates = {"d1", "d2"};
  }
  requests[3].candidates = {"d1"};
  requests[3].base_cost_s = 2.0;
  std::vector<SchedDevice> devices(2);
  devices[0].id = "d1";
  devices[1].id = "d2";
  util::Rng rng(1);
  auto result = LerfaSrfeScheduler().schedule(requests, devices, model, rng);
  ASSERT_TRUE(validate_schedule(result, requests, devices, model).is_ok());
  const ScheduledItem* restricted = result.find(4);
  ASSERT_NE(restricted, nullptr);
  EXPECT_EQ(restricted->device, "d1");
  // Balanced: makespan 3 (d1: 2+1, d2: 1+1) not 5.
  EXPECT_LE(result.service_makespan_s, 3.0 + 1e-9);
}

// -------------------------------------------------------- vs the optimum

TEST(ExhaustiveTest, FindsOptimalOrderOnOneDevice) {
  // Sequence-dependent: visiting targets in spatial order beats zig-zag.
  auto model = PhotoCostModel::axis2130();
  std::vector<ActionRequest> requests(3);
  double pans[3] = {150.0, 10.0, 80.0};
  for (int i = 0; i < 3; ++i) {
    auto& r = requests[static_cast<std::size_t>(i)];
    r.id = static_cast<std::uint64_t>(i + 1);
    r.params = {{"pan", pans[i]}, {"tilt", 0.0}, {"zoom", 1.0}};
    r.candidates = {"d1"};
  }
  std::vector<SchedDevice> devices(1);
  devices[0].id = "d1";
  devices[0].status = {{"pan", 0.0}, {"tilt", 0.0}, {"zoom", 1.0}};

  util::Rng rng(1);
  auto optimal = ExhaustiveScheduler().schedule(requests, devices, *model, rng);
  ASSERT_EQ(optimal.items.size(), 3u);
  // Optimal order is monotone in pan: 10, 80, 150 -> total pan 150 deg.
  EXPECT_EQ(optimal.items[0].request_id, 2u);
  EXPECT_EQ(optimal.items[1].request_id, 3u);
  EXPECT_EQ(optimal.items[2].request_id, 1u);
  EXPECT_NEAR(optimal.service_makespan_s, 150.0 / 67.6 + 3 * 0.36, 1e-6);
}

TEST(ExhaustiveTest, GivesUpGracefullyOnLargeInstances) {
  auto model = PhotoCostModel::axis2130();
  Workload w = tiny_workload(1, 20, 10);
  util::Rng rng(1);
  auto result = ExhaustiveScheduler().schedule(w.requests, w.devices, *model, rng);
  EXPECT_TRUE(result.items.empty());
  EXPECT_EQ(result.unassigned.size(), 20u);
}

TEST(AlgorithmsVsOptimumTest, NeverBeatOptimalAndStayWithinFactorTwo) {
  auto model = PhotoCostModel::axis2130();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Workload w = tiny_workload(seed, 5, 2);
    util::Rng opt_rng(seed);
    auto optimal =
        ExhaustiveScheduler().schedule(w.requests, w.devices, *model, opt_rng);
    ASSERT_FALSE(optimal.items.empty());

    for (const std::string& name :
         {std::string("LERFA+SRFE"), std::string("SRFAE"), std::string("LS"),
          std::string("SA")}) {
      util::Rng rng(seed + 100);
      auto result =
          make_scheduler(name)->schedule(w.requests, w.devices, *model, rng);
      EXPECT_GE(result.service_makespan_s,
                optimal.service_makespan_s - 1e-6)
          << name << " beat the optimum at seed " << seed;
      // LS is a 2-approximation for makespan without sequence dependence;
      // with it, the classical bound loosens slightly — allow 2.2x.
      EXPECT_LE(result.service_makespan_s,
                2.2 * optimal.service_makespan_s + 1e-6)
          << name << " more than 2.2x off the optimum at seed " << seed;
    }
  }
}

TEST(SaTest, ImprovesOnItsOwnConstructiveStart) {
  // SA's result is at least as good as a pure greedy run with the same
  // seed, because the construct phase is its starting point.
  auto model = PhotoCostModel::axis2130();
  WorkloadSpec spec;
  spec.n_requests = 12;
  spec.n_devices = 4;
  spec.seed = 3;
  Workload w = make_photo_workload(spec);
  util::Rng rng1(9);
  auto sa = SimulatedAnnealingScheduler().schedule(w.requests, w.devices,
                                                   *model, rng1);
  util::Rng rng2(9);
  auto greedy = SrfaeScheduler().schedule(w.requests, w.devices, *model, rng2);
  EXPECT_LE(sa.service_makespan_s, greedy.service_makespan_s + 0.5);
  EXPECT_GT(sa.cost_evaluations, 50u * greedy.cost_evaluations);
}

TEST(SchedulingEffortTest, SaBurnsOrdersOfMagnitudeMoreEvaluations) {
  auto model = PhotoCostModel::axis2130();
  WorkloadSpec spec;
  spec.n_requests = 20;
  spec.n_devices = 10;
  spec.seed = 4;
  Workload w = make_photo_workload(spec);
  std::map<std::string, std::uint64_t> evals;
  for (const auto& name : paper_scheduler_names()) {
    util::Rng rng(5);
    evals[name] = make_scheduler(name)
                      ->schedule(w.requests, w.devices, *model, rng)
                      .cost_evaluations;
  }
  // The Figure 5 phenomenon in eval counts.
  EXPECT_GT(evals["SA"], 100u * evals["LERFA+SRFE"]);
  EXPECT_GT(evals["SA"], 100u * evals["SRFAE"]);
  EXPECT_LE(evals["LS"], 20u + 1u);      // one estimate per assignment
  EXPECT_LE(evals["RANDOM"], 20u + 1u);
}

}  // namespace
}  // namespace aorta::sched
