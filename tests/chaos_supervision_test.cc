// Chaos tests for device health supervision: the Healthy/Suspect/
// Quarantined state machine, capped-backoff re-probes, broker degraded
// serving across a crash/revive cycle, and the degradation marker's path
// from broker tuples to server deliveries.
#include <gtest/gtest.h>

#include "core/aorta.h"
#include "core/health.h"
#include "devices/mote.h"
#include "server/service.h"

namespace aorta {
namespace {

using core::HealthState;
using device::HealthOutcomeKind;
using util::Duration;

// ----------------------------------------------------- state machine unit

struct SupervisorFixture : public ::testing::Test {
  SupervisorFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)),
        comm(&registry, &network),
        sup(&registry, &comm, &loop, core::HealthOptions{}) {
    (void)registry.register_type(devices::sensor_type_info());
    comm.set_health(&sup);
  }

  devices::Mica2Mote* add_mote(const std::string& id) {
    auto mote = std::make_unique<devices::Mica2Mote>(id, device::Location{});
    mote->reliability().glitch_prob = 0.0;
    devices::Mica2Mote* raw = mote.get();
    EXPECT_TRUE(registry.add(std::move(mote)).is_ok());
    (void)network.set_link(id, net::LinkModel::perfect());
    return raw;
  }

  void fail_n(const std::string& id, int n) {
    for (int i = 0; i < n; ++i) {
      sup.report(id, HealthOutcomeKind::kRead, false);
    }
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  comm::CommLayer comm;
  core::HealthSupervisor sup;
};

TEST_F(SupervisorFixture, ConsecutiveFailuresDemoteThenQuarantine) {
  add_mote("m1");
  EXPECT_EQ(sup.state("m1"), HealthState::kHealthy);
  fail_n("m1", 1);
  EXPECT_EQ(sup.state("m1"), HealthState::kHealthy);
  fail_n("m1", 1);  // suspect_after = 2
  EXPECT_EQ(sup.state("m1"), HealthState::kSuspect);
  EXPECT_FALSE(sup.is_quarantined("m1"));
  fail_n("m1", 2);  // quarantine_after = 4
  EXPECT_EQ(sup.state("m1"), HealthState::kQuarantined);
  EXPECT_TRUE(sup.is_quarantined("m1"));
  EXPECT_EQ(sup.quarantined_count(), 1u);
  EXPECT_EQ(sup.stats().quarantines, 1u);
}

TEST_F(SupervisorFixture, OneSuccessRecoversASuspect) {
  add_mote("m1");
  fail_n("m1", 3);
  EXPECT_EQ(sup.state("m1"), HealthState::kSuspect);
  sup.report("m1", HealthOutcomeKind::kAction, true);
  EXPECT_EQ(sup.state("m1"), HealthState::kHealthy);
  const core::DeviceHealth* h = sup.device_health("m1");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->consecutive_failures, 0);
}

TEST_F(SupervisorFixture, FlappingDeviceQuarantinesViaEwma) {
  // Three failures, one success, repeated: the consecutive-failure run
  // never reaches quarantine_after (4), but the EWMA success rate sinks
  // below ewma_quarantine once enough samples accumulate.
  add_mote("m1");
  for (int cycle = 0; cycle < 25 && !sup.is_quarantined("m1"); ++cycle) {
    fail_n("m1", 3);
    if (sup.is_quarantined("m1")) break;
    sup.report("m1", HealthOutcomeKind::kRead, true);
  }
  EXPECT_TRUE(sup.is_quarantined("m1"));
  const core::DeviceHealth* h = sup.device_health("m1");
  ASSERT_NE(h, nullptr);
  EXPECT_LT(h->ewma, sup.options().ewma_quarantine);
}

TEST_F(SupervisorFixture, QuarantineProbesBackOffAndRecoverOnRevive) {
  devices::Mica2Mote* mote = add_mote("m1");
  mote->set_online(false);
  fail_n("m1", 4);  // -> quarantined at t=0
  ASSERT_TRUE(sup.is_quarantined("m1"));

  // Backoff doubles from 2 s and caps at 16 s: probes go out at t = 2, 6,
  // 14, 30 while the mote stays dead (offline bounces fail them fast).
  loop.run_for(Duration::seconds(40));
  EXPECT_EQ(sup.stats().probes_sent, 4u);
  EXPECT_EQ(sup.stats().probes_failed, 4u);
  EXPECT_TRUE(sup.is_quarantined("m1"));

  // Revive: the next backoff probe (t = 46) succeeds and recovers it.
  mote->set_online(true);
  loop.run_for(Duration::seconds(10));
  EXPECT_EQ(sup.state("m1"), HealthState::kHealthy);
  EXPECT_EQ(sup.quarantined_count(), 0u);
  EXPECT_EQ(sup.stats().probes_sent, 5u);
  EXPECT_EQ(sup.stats().recoveries, 1u);

  // No stray re-probe keeps running after recovery.
  std::uint64_t sent = sup.stats().probes_sent;
  loop.run_for(Duration::seconds(60));
  EXPECT_EQ(sup.stats().probes_sent, sent);
}

TEST_F(SupervisorFixture, TransitionHookSeesEveryEdge) {
  add_mote("m1");
  std::vector<std::string> edges;
  sup.set_transition_hook([&](const device::DeviceId& id, HealthState from,
                              HealthState to) {
    edges.push_back(id + ":" + std::string(core::health_state_name(from)) +
                    ">" + std::string(core::health_state_name(to)));
  });
  fail_n("m1", 4);
  sup.report("m1", HealthOutcomeKind::kProbe, true);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], "m1:healthy>suspect");
  EXPECT_EQ(edges[1], "m1:suspect>quarantined");
  EXPECT_EQ(edges[2], "m1:quarantined>healthy");
}

// ------------------------------------------- full-stack crash/revive cycle

struct ChaosSystemFixture : public ::testing::Test {
  void build(std::uint64_t seed = 5) {
    core::Config cfg;
    cfg.seed = seed;
    sys = std::make_unique<core::Aorta>(cfg);
    for (int i = 0; i < 3; ++i) {
      std::string id = "m" + std::to_string(i);
      ASSERT_TRUE(
          sys->add_mote(id, {static_cast<double>(i), 0, 1}).is_ok());
      sys->mote(id)->reliability().glitch_prob = 0.0;
      (void)sys->mote(id)->set_signal(
          "temp", devices::constant_signal(20.0 + i));
      auto link = net::LinkModel::mote_radio();
      link.loss_prob = 0.0;
      ASSERT_TRUE(sys->network().set_link(id, link).is_ok());
    }
  }

  // Level-triggered monitoring query: one row per device per epoch, with
  // per-device row/degraded-row counts collected through the AQ row hook.
  void register_monitor() {
    core::ExecOptions opt;
    opt.on_row = [this](const std::string&, const query::TimestampedRow& r) {
      ASSERT_FALSE(r.row.empty());
      const std::string* id = std::get_if<std::string>(&r.row[0].second);
      ASSERT_NE(id, nullptr);
      ++rows[*id];
      if (r.degraded) ++degraded_rows[*id];
    };
    bool ok = false;
    sys->exec_async("CREATE AQ mon AS SELECT s.id, s.temp FROM sensor s",
                    std::move(opt),
                    [&](util::Result<core::ExecResult> r) { ok = r.is_ok(); });
    ASSERT_TRUE(ok);  // DDL completes synchronously
  }

  std::unique_ptr<core::Aorta> sys;
  std::map<std::string, int> rows;
  std::map<std::string, int> degraded_rows;
};

TEST_F(ChaosSystemFixture, CrashedDeviceIsQuarantinedServedDegradedAndRevives) {
  build();
  register_monitor();

  sys->run_for(Duration::seconds(10));  // warm: fresh rows from everyone
  EXPECT_GT(rows["m1"], 5);
  EXPECT_EQ(degraded_rows["m1"], 0);

  // Crash m1 mid-run. The broker's next sweeps fail its read, the
  // supervisor quarantines it, and from then on its rows are served
  // last-known-good and tagged degraded — no more RPCs to the corpse.
  sys->mote("m1")->set_online(false);
  sys->run_for(Duration::seconds(20));

  ASSERT_NE(sys->health(), nullptr);
  EXPECT_TRUE(sys->health()->is_quarantined("m1"));
  const comm::BrokerTypeStats& bs = sys->scan_broker().stats().at("sensor");
  EXPECT_GT(bs.quarantined_skips, 0u);
  EXPECT_GT(bs.degraded_reads, 0u);
  EXPECT_GT(bs.degraded_tuples, 0u);
  // Only the pre-quarantine epochs dropped the device from the batch; the
  // quarantined epochs serve degraded instead of skipping.
  EXPECT_GT(bs.devices_skipped, 0u);
  EXPECT_LE(bs.devices_skipped, 6u);
  EXPECT_GT(degraded_rows["m1"], 0);
  EXPECT_EQ(degraded_rows["m0"], 0);
  EXPECT_EQ(degraded_rows["m2"], 0);

  // Revive: a backoff probe recovers the device; the existing broker
  // subscription resumes fresh (non-degraded) rows without re-registering.
  std::size_t subscribers = sys->scan_broker().subscriber_count();
  sys->mote("m1")->set_online(true);
  sys->run_for(Duration::seconds(20));
  EXPECT_EQ(sys->health()->state("m1"), HealthState::kHealthy);
  EXPECT_GE(sys->health()->stats().recoveries, 1u);
  EXPECT_EQ(sys->scan_broker().subscriber_count(), subscribers);

  int rows_at_recovery = rows["m1"];
  int degraded_at_recovery = degraded_rows["m1"];
  sys->run_for(Duration::seconds(5));
  EXPECT_GT(rows["m1"], rows_at_recovery);             // rows flow again
  EXPECT_EQ(degraded_rows["m1"], degraded_at_recovery);  // and are fresh
}

TEST_F(ChaosSystemFixture, SupervisionOffKeepsPayingFullPrice) {
  core::Config cfg;
  cfg.seed = 5;
  cfg.health_supervision = false;
  sys = std::make_unique<core::Aorta>(cfg);
  for (int i = 0; i < 2; ++i) {
    std::string id = "m" + std::to_string(i);
    ASSERT_TRUE(sys->add_mote(id, {static_cast<double>(i), 0, 1}).is_ok());
    sys->mote(id)->reliability().glitch_prob = 0.0;
    (void)sys->mote(id)->set_signal("temp", devices::constant_signal(20.0));
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    ASSERT_TRUE(sys->network().set_link(id, link).is_ok());
  }
  register_monitor();
  sys->run_for(Duration::seconds(5));
  sys->mote("m1")->set_online(false);
  sys->run_for(Duration::seconds(20));

  EXPECT_EQ(sys->health(), nullptr);
  const comm::BrokerTypeStats& bs = sys->scan_broker().stats().at("sensor");
  // The ablation baseline: every epoch retries the corpse and skips it.
  EXPECT_EQ(bs.quarantined_skips, 0u);
  EXPECT_EQ(bs.degraded_tuples, 0u);
  EXPECT_GE(bs.read_failures, 15u);
  EXPECT_EQ(degraded_rows["m1"], 0);
}

// ------------------------------------------------- marker at the service

TEST(ChaosServerTest, DegradedMarkerReachesDeliveriesAndStats) {
  core::Config cfg;
  cfg.seed = 9;
  core::Aorta sys(cfg);
  for (int i = 0; i < 2; ++i) {
    std::string id = "m" + std::to_string(i);
    ASSERT_TRUE(sys.add_mote(id, {static_cast<double>(i), 0, 1}).is_ok());
    sys.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.mote(id)->set_signal("temp", devices::constant_signal(21.0));
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    ASSERT_TRUE(sys.network().set_link(id, link).is_ok());
  }

  server::QueryService service(&sys, server::ServiceConfig{});
  server::SessionId sid = service.connect("t0");
  auto submitted = service.submit(
      sid, "CREATE AQ mon AS SELECT s.id, s.temp FROM sensor s");
  ASSERT_TRUE(submitted.is_ok());

  sys.run_for(Duration::seconds(10));  // dispatch + warm
  sys.mote("m1")->set_online(false);
  sys.run_for(Duration::seconds(20));

  // Every kRow delivery for the quarantined device carries the marker.
  int degraded_m1 = 0, fresh_m1 = 0, degraded_m0 = 0;
  for (const server::Delivery& d : service.session(sid)->drain()) {
    if (d.kind != server::Delivery::Kind::kRow || d.rows.empty()) continue;
    const std::string* id = std::get_if<std::string>(&d.rows[0][0].second);
    ASSERT_NE(id, nullptr);
    if (*id == "m1") {
      (d.degraded ? degraded_m1 : fresh_m1)++;
    } else if (d.degraded) {
      ++degraded_m0;
    }
  }
  EXPECT_GT(degraded_m1, 0);
  EXPECT_GT(fresh_m1, 0);  // pre-crash rows were fresh
  EXPECT_EQ(degraded_m0, 0);

  EXPECT_GT(service.tenant_stats().at("t0").rows_degraded, 0u);
  std::string json = service.stats_json();
  EXPECT_NE(json.find("\"rows_degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"degraded_tuples\""), std::string::npos);
}

}  // namespace
}  // namespace aorta
