// Tests for the shared data-acquisition plane (comm::ScanBroker): union
// scans, per-subscriber projection, the freshness cache, in-flight read
// dedup, unsubscribe-while-in-flight, and the executor's epoch clamping.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "comm/scan_broker.h"
#include "core/aorta.h"
#include "devices/mote.h"
#include "util/logging.h"

namespace aorta {
namespace {

using device::Value;
using util::Duration;

struct BrokerFixture : public ::testing::Test {
  BrokerFixture()
      : loop(&clock),
        network(&loop, util::Rng(1)),
        registry(&network, &loop, util::Rng(2)),
        comm(&registry, &network) {
    (void)registry.register_type(devices::sensor_type_info());
    (void)registry.register_type(devices::camera_type_info());
  }

  devices::Mica2Mote* add_mote(const std::string& id, double temp = 20.0) {
    auto mote =
        std::make_unique<devices::Mica2Mote>(id, device::Location{1, 2, 3});
    mote->reliability().glitch_prob = 0.0;
    (void)mote->set_signal("temp", devices::constant_signal(temp));
    (void)mote->set_signal("light", devices::constant_signal(300.0));
    devices::Mica2Mote* raw = mote.get();
    EXPECT_TRUE(registry.add(std::move(mote)).is_ok());
    (void)network.set_link(id, net::LinkModel::perfect());
    return raw;
  }

  util::SimClock clock;
  util::EventLoop loop;
  net::Network network;
  device::DeviceRegistry registry;
  comm::CommLayer comm;
};

// The core regression of the refactor: two subscribers with different
// projected attribute sets over the same device type cause exactly ONE
// union-attribute fetch per device per epoch, and each subscriber's rows
// carry only its own needed attributes.
TEST_F(BrokerFixture, UnionScanFetchesEachDeviceOncePerEpoch) {
  add_mote("m1");
  add_mote("m2");
  add_mote("m3");
  comm::ScanBroker broker(&registry, &comm, &loop);

  std::vector<comm::Tuple> temp_rows;
  std::vector<comm::Tuple> light_rows;
  (void)broker.subscribe("sensor", {"temp"}, 1,
                         [&](const std::vector<comm::Tuple>& t, std::uint64_t) {
                           temp_rows = t;
                         });
  (void)broker.subscribe("sensor", {"light"}, 1,
                         [&](const std::vector<comm::Tuple>& t, std::uint64_t) {
                           light_rows = t;
                         });

  for (int epoch = 1; epoch <= 3; ++epoch) {
    bool flushed = false;
    broker.tick([&]() { flushed = true; });
    loop.run_all();
    EXPECT_TRUE(flushed);

    const comm::BrokerTypeStats& s = broker.stats().at("sensor");
    // One batch per epoch, fetching the union {temp, light} from each of
    // the 3 devices: 6 RPCs per epoch — not the 2x a per-query plan pays.
    EXPECT_EQ(s.batches, static_cast<std::uint64_t>(epoch));
    EXPECT_EQ(s.rpcs_issued, static_cast<std::uint64_t>(epoch) * 3u * 2u);
    EXPECT_EQ(s.rpcs_coalesced, 0u);

    ASSERT_EQ(temp_rows.size(), 3u);
    ASSERT_EQ(light_rows.size(), 3u);
    for (const comm::Tuple& t : temp_rows) {
      EXPECT_FALSE(std::holds_alternative<std::monostate>(t.get("temp")));
      EXPECT_TRUE(std::holds_alternative<std::monostate>(t.get("light")));
    }
    for (const comm::Tuple& t : light_rows) {
      EXPECT_FALSE(std::holds_alternative<std::monostate>(t.get("light")));
      EXPECT_TRUE(std::holds_alternative<std::monostate>(t.get("temp")));
    }
  }
}

TEST_F(BrokerFixture, FreshnessCacheServesRepeatScansWithoutRpcs) {
  add_mote("m1");
  add_mote("m2");
  comm::ScanBroker::Options opts;
  opts.freshness = Duration::seconds(10.0);
  comm::ScanBroker broker(&registry, &comm, &loop, opts);

  std::size_t deliveries = 0;
  (void)broker.subscribe("sensor", {"temp"}, 1,
                         [&](const std::vector<comm::Tuple>& t, std::uint64_t) {
                           ++deliveries;
                           EXPECT_EQ(t.size(), 2u);
                         });

  broker.tick({});
  loop.run_all();
  EXPECT_EQ(broker.stats().at("sensor").rpcs_issued, 2u);
  EXPECT_EQ(broker.stats().at("sensor").cache_hits, 0u);

  // run_all only advanced the clock by the RPC round trips (milliseconds),
  // far inside the 10 s window: the next epoch is served from cache.
  broker.tick({});
  loop.run_all();
  EXPECT_EQ(broker.stats().at("sensor").rpcs_issued, 2u);
  EXPECT_EQ(broker.stats().at("sensor").cache_hits, 2u);
  EXPECT_EQ(deliveries, 2u);
}

TEST_F(BrokerFixture, ConcurrentOneShotsJoinInflightReads) {
  add_mote("m1");
  add_mote("m2");
  comm::ScanBroker broker(&registry, &comm, &loop);

  std::size_t done = 0;
  auto on_done = [&](std::vector<comm::Tuple> t) {
    ++done;
    EXPECT_EQ(t.size(), 2u);
  };
  // Issue both before the loop runs: the second scan's (device, temp)
  // reads are still in flight and must be joined, not re-sent.
  broker.acquire_once("sensor", {"temp"}, on_done);
  broker.acquire_once("sensor", {"temp"}, on_done);
  loop.run_all();

  EXPECT_EQ(done, 2u);
  EXPECT_EQ(broker.stats().at("sensor").rpcs_issued, 2u);
  EXPECT_EQ(broker.stats().at("sensor").rpcs_coalesced, 2u);
}

TEST_F(BrokerFixture, UnsubscribeWhileInFlightSuppressesDelivery) {
  add_mote("m1");
  comm::ScanBroker broker(&registry, &comm, &loop);

  bool delivered = false;
  comm::ScanBroker::SubscriptionId id = broker.subscribe(
      "sensor", {"temp"}, 1,
      [&](const std::vector<comm::Tuple>&, std::uint64_t) { delivered = true; });

  bool flushed = false;
  broker.tick([&]() { flushed = true; });  // reads now in flight
  broker.unsubscribe(id);
  loop.run_all();

  EXPECT_FALSE(delivered);
  EXPECT_TRUE(flushed);  // the tick barrier still releases
  EXPECT_EQ(broker.subscriber_count(), 0u);
}

TEST_F(BrokerFixture, UnreachableDeviceSkippedOnlyForAffectedSubscribers) {
  add_mote("m1");
  devices::Mica2Mote* dead = add_mote("m2");
  dead->set_online(false);
  comm::ScanBroker broker(&registry, &comm, &loop);

  std::vector<comm::Tuple> sensory_rows;
  std::vector<comm::Tuple> static_rows;
  (void)broker.subscribe("sensor", {"temp"}, 1,
                         [&](const std::vector<comm::Tuple>& t, std::uint64_t) {
                           sensory_rows = t;
                         });
  // Needs only the non-sensory `loc`: the dead radio is irrelevant to it.
  (void)broker.subscribe("sensor", {"loc"}, 1,
                         [&](const std::vector<comm::Tuple>& t, std::uint64_t) {
                           static_rows = t;
                         });

  broker.tick({});
  loop.run_all();

  ASSERT_EQ(sensory_rows.size(), 1u);
  EXPECT_EQ(sensory_rows[0].source_device(), "m1");
  EXPECT_EQ(static_rows.size(), 2u);
  EXPECT_EQ(broker.stats().at("sensor").devices_skipped, 1u);
  EXPECT_GT(broker.stats().at("sensor").read_failures, 0u);
}

TEST_F(BrokerFixture, CoalesceOffRevertsToPrivatePerQueryScans) {
  add_mote("m1");
  add_mote("m2");
  comm::ScanBroker::Options opts;
  opts.coalesce = false;
  comm::ScanBroker broker(&registry, &comm, &loop, opts);

  (void)broker.subscribe("sensor", {"temp"}, 1,
                         [](const std::vector<comm::Tuple>&, std::uint64_t) {});
  (void)broker.subscribe("sensor", {"temp"}, 1,
                         [](const std::vector<comm::Tuple>&, std::uint64_t) {});
  broker.tick({});
  loop.run_all();

  // The ablation baseline pays N x D: two private scans over two devices.
  EXPECT_EQ(broker.stats().at("sensor").batches, 2u);
  EXPECT_EQ(broker.stats().at("sensor").rpcs_issued, 4u);
  EXPECT_EQ(broker.stats().at("sensor").rpcs_coalesced, 0u);
  EXPECT_EQ(broker.stats().at("sensor").cache_hits, 0u);
}

TEST_F(BrokerFixture, EffectiveCadenceIsGcdOfSubscriberPeriods) {
  comm::ScanBroker broker(&registry, &comm, &loop);
  (void)broker.subscribe("sensor", {}, 4,
                         [](const std::vector<comm::Tuple>&, std::uint64_t) {});
  (void)broker.subscribe("sensor", {}, 6,
                         [](const std::vector<comm::Tuple>&, std::uint64_t) {});
  EXPECT_EQ(broker.effective_period_ticks("sensor"), 2u);
  EXPECT_EQ(broker.subscriber_count("sensor"), 2u);
  EXPECT_EQ(broker.effective_period_ticks("camera"), 0u);
}

TEST_F(BrokerFixture, EmptyTableDeliversEmptyBatchSynchronously) {
  comm::ScanBroker broker(&registry, &comm, &loop);
  bool delivered = false;
  (void)broker.subscribe("camera", {}, 1,
                         [&](const std::vector<comm::Tuple>& t, std::uint64_t) {
                           delivered = true;
                           EXPECT_TRUE(t.empty());
                         });
  bool flushed = false;
  broker.tick([&]() { flushed = true; });
  EXPECT_TRUE(delivered);
  EXPECT_TRUE(flushed);
}

// ---------------------------------------------------- executor integration

// An AQ requesting an epoch shorter than the engine epoch used to be
// silently clamped; it must now be clamped WITH a logged warning.
TEST(ScanBrokerExecutorTest, SubEpochAqIsClampedWithWarning) {
  std::vector<std::string> warnings;
  util::Logger::instance().set_sink(
      [&](util::LogLevel level, const std::string& line) {
        if (level == util::LogLevel::kWarn) warnings.push_back(line);
      });

  core::Config cfg;
  core::Aorta sys(cfg);  // engine epoch 1 s
  (void)sys.add_mote("m1", {0, 0, 1});
  ASSERT_TRUE(
      sys.exec("CREATE AQ fast EVERY 0.2 AS "
               "SELECT s.temp FROM sensor s WHERE s.temp > 1000")
          .is_ok());
  ASSERT_TRUE(
      sys.exec("CREATE AQ slow EVERY 5 AS "
               "SELECT s.temp FROM sensor s WHERE s.temp > 1000")
          .is_ok());

  util::Logger::instance().set_sink([](util::LogLevel, const std::string& l) {
    std::fputs(l.c_str(), stderr);
    std::fputc('\n', stderr);
  });

  EXPECT_EQ(sys.executor().aq_epoch_ticks("fast"), 1u);
  EXPECT_EQ(sys.executor().aq_epoch_ticks("slow"), 5u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("fast"), std::string::npos);
  EXPECT_NE(warnings[0].find("clamping"), std::string::npos);
}

// Two AQs over the same table share one union sweep per engine epoch.
TEST(ScanBrokerExecutorTest, CoLocatedAqsShareOneSweepPerEpoch) {
  core::Config cfg;
  core::Aorta sys(cfg);
  for (int i = 0; i < 4; ++i) {
    std::string id = "m" + std::to_string(i);
    ASSERT_TRUE(sys.add_mote(id, {static_cast<double>(i), 0, 1}).is_ok());
    sys.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.network().set_link(id, net::LinkModel::perfect());
  }
  ASSERT_TRUE(sys.exec("CREATE AQ a AS "
                       "SELECT s.temp FROM sensor s WHERE s.temp > 1000")
                  .is_ok());
  ASSERT_TRUE(sys.exec("CREATE AQ b AS "
                       "SELECT s.light FROM sensor s WHERE s.light > 1000")
                  .is_ok());
  sys.run_for(Duration::seconds(10));

  const comm::BrokerTypeStats& s = sys.scan_broker().stats().at("sensor");
  EXPECT_GE(s.batches, 5u);
  // Every batch fetched exactly the union {temp, light} from all 4 motes.
  EXPECT_EQ(s.rpcs_issued, s.batches * 4u * 2u);
  EXPECT_EQ(sys.scan_broker().subscriber_count("sensor"), 2u);
  const query::QueryStats* qa = sys.query_stats("a");
  ASSERT_NE(qa, nullptr);
  EXPECT_GE(qa->epochs, 5u);
}

}  // namespace
}  // namespace aorta
