// Tests for the sharded czar/worker query plane (src/shard): the fragment
// wire format (spec fields, exact rows codec, FNV-1a partition), the
// deterministic merger, the czar's planning limits, end-to-end SELECT
// partial merging and continuous-row delivery across shards, worker
// failure/recovery supervision, and the QueryService num_shards routing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/aorta.h"
#include "server/service.h"
#include "server/session.h"
#include "shard/fragment.h"
#include "shard/merger.h"
#include "shard/plane.h"
#include "query/parser.h"

namespace aorta {
namespace {

using server::Delivery;
using server::QueryService;
using server::ServiceConfig;
using server::SessionId;
using shard::FragmentSpec;
using shard::Merger;
using shard::Plane;
using util::Duration;
using util::TimePoint;

// ------------------------------------------------------ fragment codec

TEST(FragmentTest, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors; the partition function must be
  // stable across toolchains (committed baselines depend on it).
  EXPECT_EQ(shard::fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(shard::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(shard::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(FragmentTest, ShardOfIsStableAndInRange) {
  for (int n : {1, 2, 4, 8}) {
    for (int i = 0; i < 32; ++i) {
      std::string id = "m" + std::to_string(i);
      int s = shard::shard_of(id, n);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, shard::shard_of(id, n));  // pure function of the id
    }
  }
}

TEST(FragmentTest, SpecFieldsRoundTrip) {
  FragmentSpec spec;
  spec.name = "s1/push";
  spec.sql = "SELECT s.temp FROM sensor s WHERE s.temp > 30";
  spec.epoch_s = 2.5;
  spec.once = true;
  spec.shard = 3;
  spec.num_shards = 4;
  spec.gen = 7;
  spec.needed_attrs = "temp";
  spec.device_slice = "fnv1a(id) mod 4 == 3";

  net::Message msg;
  shard::fragment_to_fields(spec, &msg);
  FragmentSpec back = shard::fragment_from_fields(msg);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.sql, spec.sql);
  EXPECT_DOUBLE_EQ(back.epoch_s, spec.epoch_s);
  EXPECT_EQ(back.once, spec.once);
  EXPECT_EQ(back.shard, spec.shard);
  EXPECT_EQ(back.num_shards, spec.num_shards);
  EXPECT_EQ(back.gen, spec.gen);
  EXPECT_EQ(back.needed_attrs, spec.needed_attrs);
}

TEST(FragmentTest, RowsCodecRoundTripsEveryValueType) {
  std::vector<query::TimestampedRow> rows;
  query::TimestampedRow r1;
  r1.at = TimePoint() + Duration::millis(1234);
  r1.row = {{"flag", device::Value{true}},
            {"count", device::Value{std::int64_t{-42}}},
            {"temp", device::Value{0.1}},  // not exactly representable: the
                                           // %.17g round-trip must hold
            {"name", device::Value{std::string("a:b,c 7:d")}},
            {"none", device::Value{}}};
  rows.push_back(r1);
  query::TimestampedRow r2;
  r2.at = TimePoint() + Duration::seconds(9.0);
  r2.degraded = true;
  r2.row = {{"loc", device::Value{device::Location{1.5, -2.25, 0.125}}},
            {"empty", device::Value{std::string("")}},
            {"tiny", device::Value{-1.0e-9}}};
  rows.push_back(r2);

  std::string payload = shard::encode_rows(rows);
  std::vector<query::TimestampedRow> back;
  ASSERT_TRUE(shard::decode_rows(payload, &back));
  ASSERT_EQ(back.size(), 2u);

  EXPECT_EQ(back[0].at, r1.at);
  EXPECT_FALSE(back[0].degraded);
  ASSERT_EQ(back[0].row.size(), 5u);
  EXPECT_EQ(back[0].row[0].first, "flag");
  EXPECT_EQ(std::get<bool>(back[0].row[0].second), true);
  EXPECT_EQ(std::get<std::int64_t>(back[0].row[1].second), -42);
  EXPECT_EQ(std::get<double>(back[0].row[2].second), 0.1);  // exact
  EXPECT_EQ(std::get<std::string>(back[0].row[3].second), "a:b,c 7:d");
  EXPECT_TRUE(
      std::holds_alternative<std::monostate>(back[0].row[4].second));

  EXPECT_EQ(back[1].at, r2.at);
  EXPECT_TRUE(back[1].degraded);
  auto loc = std::get<device::Location>(back[1].row[0].second);
  EXPECT_EQ(loc.x, 1.5);
  EXPECT_EQ(loc.y, -2.25);
  EXPECT_EQ(loc.z, 0.125);
  EXPECT_EQ(std::get<std::string>(back[1].row[1].second), "");
  EXPECT_EQ(std::get<double>(back[1].row[2].second), -1.0e-9);

  // Deterministic: re-encoding the decoded rows is byte-identical.
  EXPECT_EQ(shard::encode_rows(back), payload);
}

TEST(FragmentTest, RowsCodecRejectsMalformedPayloads) {
  std::vector<query::TimestampedRow> out;
  EXPECT_FALSE(shard::decode_rows("garbage", &out));

  query::TimestampedRow r;
  r.at = TimePoint() + Duration::seconds(1.0);
  r.row = {{"temp", device::Value{25.0}}};
  std::string good = shard::encode_rows({r});
  EXPECT_TRUE(shard::decode_rows(good, &out));
  EXPECT_FALSE(
      shard::decode_rows(good.substr(0, good.size() - 2), &out));  // truncated
}

TEST(FragmentTest, NeededAttributesSpanSelectListAndWhere) {
  auto stmt = query::parse(
      "SELECT s.temp FROM sensor s WHERE s.accel_x > 500 AND s.temp < 40");
  ASSERT_TRUE(stmt.is_ok());
  auto attrs = shard::needed_attributes(stmt.value().select);
  EXPECT_EQ(attrs, (std::set<std::string>{"accel_x", "temp"}));

  auto agg = query::parse("SELECT count(*) FROM sensor s WHERE s.temp > 0");
  ASSERT_TRUE(agg.is_ok());
  auto agg_attrs = shard::needed_attributes(agg.value().select);
  EXPECT_EQ(agg_attrs, (std::set<std::string>{"temp"}));  // no "*"
}

TEST(FragmentTest, AggregateClassification) {
  auto stmt = query::parse(
      "SELECT count(*), sum(s.temp), min(s.temp), max(s.temp), s.temp "
      "FROM sensor s");
  ASSERT_TRUE(stmt.is_ok());
  const auto& items = stmt.value().select.select_list;
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(shard::agg_kind(*items[0]), shard::AggKind::kCount);
  EXPECT_EQ(shard::agg_kind(*items[1]), shard::AggKind::kSum);
  EXPECT_EQ(shard::agg_kind(*items[2]), shard::AggKind::kMin);
  EXPECT_EQ(shard::agg_kind(*items[3]), shard::AggKind::kMax);
  EXPECT_EQ(shard::agg_kind(*items[4]), shard::AggKind::kNone);

  bool has_avg = false;
  EXPECT_TRUE(shard::select_has_aggregates(stmt.value().select, &has_avg));
  EXPECT_FALSE(has_avg);
  auto avg = query::parse("SELECT avg(s.temp) FROM sensor s");
  ASSERT_TRUE(avg.is_ok());
  EXPECT_TRUE(shard::select_has_aggregates(avg.value().select, &has_avg));
  EXPECT_TRUE(has_avg);
}

// -------------------------------------------------------------- merger

// A released row tagged with enough provenance to assert the merge order.
struct Released {
  std::string query;
  TimePoint at;
  std::int64_t tag = 0;
};

query::TimestampedRow tagged_row(double at_s, std::int64_t tag) {
  query::TimestampedRow r;
  r.at = TimePoint() + Duration::seconds(at_s);
  r.row = {{"tag", device::Value{tag}}};
  return r;
}

TEST(MergerTest, ReleasesInTimestampShardArrivalOrder) {
  std::vector<Released> out;
  Merger m(2, [&](const std::string& q, const query::TimestampedRow& row) {
    out.push_back({q, row.at, std::get<std::int64_t>(row.row[0].second)});
  });

  // Arrival order deliberately scrambled across shards and timestamps.
  m.add(1, "q", tagged_row(2.0, 3));
  m.add(0, "q", tagged_row(1.0, 1));
  m.add(0, "q", tagged_row(2.0, 2));
  m.add(1, "q", tagged_row(2.0, 4));  // same (at, shard): arrival breaks tie
  EXPECT_EQ(m.buffered(), 4u);
  EXPECT_TRUE(out.empty());  // both watermarks still at 0

  m.watermark(0, TimePoint() + Duration::seconds(5.0));
  EXPECT_TRUE(out.empty());  // frontier = min over shards, shard 1 still 0
  m.watermark(1, TimePoint() + Duration::seconds(5.0));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].tag, 1);  // (1.0, shard 0)
  EXPECT_EQ(out[1].tag, 2);  // (2.0, shard 0)
  EXPECT_EQ(out[2].tag, 3);  // (2.0, shard 1, arrival 0)
  EXPECT_EQ(out[3].tag, 4);  // (2.0, shard 1, arrival 1)

  // The frontier bound is strict: a row stamped exactly at the watermark
  // stays buffered (the worker may still emit more rows at that instant).
  m.add(0, "q", tagged_row(5.0, 5));
  m.watermark(1, TimePoint() + Duration::seconds(6.0));
  EXPECT_EQ(m.buffered(), 1u);
  m.watermark(0, TimePoint() + Duration::seconds(5.5));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4].tag, 5);
}

TEST(MergerTest, DownShardStopsGatingTheFrontier) {
  std::vector<Released> out;
  Merger m(2, [&](const std::string& q, const query::TimestampedRow& row) {
    out.push_back({q, row.at, std::get<std::int64_t>(row.row[0].second)});
  });
  m.add(0, "q", tagged_row(1.0, 1));
  m.watermark(0, TimePoint() + Duration::seconds(10.0));
  EXPECT_TRUE(out.empty());  // shard 1 never heartbeated

  m.set_live(1, false);  // a dead worker must not stall the survivors
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tag, 1);
  EXPECT_EQ(m.stats().rows_in, 1u);
  EXPECT_EQ(m.stats().rows_out, 1u);

  // Back up: its (stale) watermark gates the frontier again.
  m.set_live(1, true);
  m.add(0, "q", tagged_row(2.0, 2));
  EXPECT_EQ(out.size(), 1u);
  m.watermark(1, TimePoint() + Duration::seconds(10.0));
  EXPECT_EQ(out.size(), 2u);
}

TEST(MergerTest, ForgetQueryDropsBufferedRows) {
  std::vector<Released> out;
  Merger m(1, [&](const std::string& q, const query::TimestampedRow& row) {
    out.push_back({q, row.at, std::get<std::int64_t>(row.row[0].second)});
  });
  m.add(0, "dead", tagged_row(1.0, 1));
  m.add(0, "live", tagged_row(1.0, 2));
  m.add(0, "dead", tagged_row(2.0, 3));
  m.forget_query("dead");
  EXPECT_EQ(m.buffered(), 1u);
  m.watermark(0, TimePoint() + Duration::seconds(5.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query, "live");
}

// ------------------------------------------------- czar planning limits

TEST(CzarPlanningTest, RejectsJoinsAndForeignDdl) {
  core::Aorta sys(core::Config{});
  Plane plane(&sys, Plane::Options{.num_shards = 2});

  auto run = [&](const std::string& sql) {
    util::Result<core::ExecResult> out = util::internal_error("not called");
    plane.exec_async(sql, {}, [&](util::Result<core::ExecResult> r) {
      out = std::move(r);
    });
    sys.run_for(Duration::seconds(1.0));
    return out;
  };

  auto join = run("SELECT s.temp FROM sensor s, camera c");
  ASSERT_FALSE(join.is_ok());
  EXPECT_NE(join.status().message().find("joins"), std::string::npos);

  // Continuous avg() is shardable now too: each worker ships (sum, count)
  // window partials and the czar finalizes per window instant behind the
  // merge frontier (DESIGN.md §15).
  auto aq_avg = run("CREATE AQ a AS SELECT avg(s.temp) FROM sensor s");
  EXPECT_TRUE(aq_avg.is_ok()) << aq_avg.status().to_string();

  auto show = run("SHOW DEVICES");
  ASSERT_FALSE(show.is_ok());
  EXPECT_NE(show.status().message().find("sharded plane"), std::string::npos);

  auto aq_join = run(
      "CREATE AQ j AS SELECT s.temp FROM sensor s, camera c");
  ASSERT_FALSE(aq_join.is_ok());
}

// ----------------------------------------------- end-to-end shard plane

// A deterministic 2-shard world: six motes with distinct constant temps,
// zero glitch probability and lossless links so every epoch's scan
// succeeds. Returns the plane; asserts the hash partition actually uses
// both shards (FNV-1a is fixed, so this can never start flaking).
struct PlaneWorld {
  explicit PlaneWorld(int num_shards, core::Config config = core::Config{})
      : sys(config) {
    Plane::Options po;
    po.num_shards = num_shards;
    plane = std::make_unique<Plane>(&sys, po);
    for (int i = 0; i < 6; ++i) {
      std::string id = "m" + std::to_string(i);
      ASSERT_OK(plane->add_mote(id, {double(i), 0, 1}));
      plane->mote(id)->reliability().glitch_prob = 0.0;
      (void)plane->mote(id)->set_signal(
          "temp", devices::constant_signal(10.0 + i));
      // AQ predicates are edge-triggered: a device fires when its predicate
      // *becomes* true. The 2s-period spike alternates the accel predicate
      // true/false at successive 1s epoch samples, so every mote re-fires
      // every other epoch (a constant signal would fire exactly once).
      (void)plane->mote(id)->set_signal(
          "accel_x", devices::periodic_spike_signal(
                         0.0, 900.0, Duration::seconds(2.0),
                         Duration::seconds(0.5), Duration::zero()));
      (void)sys.network().set_link(id, Plane::backplane());
    }
  }
  static void ASSERT_OK(const util::Status& s) { ASSERT_TRUE(s.is_ok()) << s.message(); }

  core::Aorta sys;
  std::unique_ptr<Plane> plane;
};

TEST(ShardPlaneTest, DevicePartitionCoversBothShards) {
  PlaneWorld w(2);
  bool shard_used[2] = {false, false};
  for (int i = 0; i < 6; ++i) {
    shard_used[w.plane->shard_of_device("m" + std::to_string(i))] = true;
  }
  EXPECT_TRUE(shard_used[0]);
  EXPECT_TRUE(shard_used[1]);
  // The owning worker's registry holds the device; the other does not.
  int owner = w.plane->shard_of_device("m0");
  EXPECT_NE(w.plane->worker(owner).mote("m0"), nullptr);
  EXPECT_EQ(w.plane->worker(1 - owner).mote("m0"), nullptr);
}

TEST(ShardPlaneTest, SelectConcatenatesPartialsFromAllShards) {
  PlaneWorld w(2);
  util::Result<core::ExecResult> out = util::internal_error("not called");
  w.plane->exec_async("SELECT s.temp FROM sensor s", {},
                      [&](util::Result<core::ExecResult> r) {
                        out = std::move(r);
                      });
  w.sys.run_for(Duration::seconds(3.0));
  ASSERT_TRUE(out.is_ok()) << out.status().message();
  ASSERT_EQ(out.value().rows.size(), 6u);
  // Every mote's temp appears exactly once across the merged partials.
  std::multiset<double> temps;
  for (const query::Row& row : out.value().rows) {
    double v = 0;
    ASSERT_TRUE(device::value_as_double(row[0].second, &v));
    temps.insert(v);
  }
  EXPECT_EQ(temps, (std::multiset<double>{10, 11, 12, 13, 14, 15}));
  EXPECT_EQ(w.plane->czar().stats().selects, 1u);
  EXPECT_EQ(w.plane->worker(0).stats().selects_served, 1u);
  EXPECT_EQ(w.plane->worker(1).stats().selects_served, 1u);
}

TEST(ShardPlaneTest, SelectMergesPartialAggregates) {
  PlaneWorld w(2);
  util::Result<core::ExecResult> out = util::internal_error("not called");
  w.plane->exec_async(
      "SELECT count(*), min(s.temp), max(s.temp) FROM sensor s", {},
      [&](util::Result<core::ExecResult> r) { out = std::move(r); });
  w.sys.run_for(Duration::seconds(3.0));
  ASSERT_TRUE(out.is_ok()) << out.status().message();
  ASSERT_EQ(out.value().rows.size(), 1u);
  const query::Row& row = out.value().rows[0];
  ASSERT_EQ(row.size(), 3u);
  double count = 0, lo = 0, hi = 0;
  ASSERT_TRUE(device::value_as_double(row[0].second, &count));
  ASSERT_TRUE(device::value_as_double(row[1].second, &lo));
  ASSERT_TRUE(device::value_as_double(row[2].second, &hi));
  EXPECT_EQ(count, 6);  // summed across per-shard partial counts
  EXPECT_EQ(lo, 10.0);  // extrema across per-shard extrema
  EXPECT_EQ(hi, 15.0);
}

// avg() is not directly mergeable from per-shard partials; the worker
// rewrites it into (sum, count) columns and the czar finalizes the ratio
// at the merge barrier. The merged value must equal the unsharded one and
// the finalized row must carry the original avg() label, not the rewrite.
TEST(ShardPlaneTest, SelectMergesAvgAcrossShards) {
  auto run_avg = [](int num_shards, const std::string& sql) {
    PlaneWorld w(num_shards);
    util::Result<core::ExecResult> out = util::internal_error("not called");
    w.plane->exec_async(sql, {}, [&](util::Result<core::ExecResult> r) {
      out = std::move(r);
    });
    w.sys.run_for(Duration::seconds(3.0));
    return out;
  };

  const std::string sql =
      "SELECT avg(s.temp), count(*), sum(s.temp) FROM sensor s";
  auto sharded = run_avg(2, sql);
  ASSERT_TRUE(sharded.is_ok()) << sharded.status().message();
  ASSERT_EQ(sharded.value().rows.size(), 1u);
  const query::Row& row = sharded.value().rows[0];
  ASSERT_EQ(row.size(), 3u);  // the appended count partial is trimmed
  EXPECT_EQ(row[0].first, "avg(s.temp)");
  double avg = 0, count = 0, sum = 0;
  ASSERT_TRUE(device::value_as_double(row[0].second, &avg));
  ASSERT_TRUE(device::value_as_double(row[1].second, &count));
  ASSERT_TRUE(device::value_as_double(row[2].second, &sum));
  EXPECT_DOUBLE_EQ(avg, 12.5);  // mean of 10..15
  EXPECT_EQ(count, 6);
  EXPECT_DOUBLE_EQ(sum, 75.0);

  // One shard and two shards agree exactly.
  auto single = run_avg(1, sql);
  ASSERT_TRUE(single.is_ok()) << single.status().message();
  double single_avg = 0;
  ASSERT_TRUE(
      device::value_as_double(single.value().rows[0][0].second, &single_avg));
  EXPECT_DOUBLE_EQ(single_avg, avg);
}

TEST(ShardPlaneTest, SelectAvgWithEmptyShardAndEmptyWorld) {
  auto run_avg = [](int num_shards, const std::string& sql) {
    PlaneWorld w(num_shards);
    util::Result<core::ExecResult> out = util::internal_error("not called");
    w.plane->exec_async(sql, {}, [&](util::Result<core::ExecResult> r) {
      out = std::move(r);
    });
    w.sys.run_for(Duration::seconds(3.0));
    return out;
  };

  // Only m5 (temp 15) passes the predicate, so one shard contributes a
  // zero-count partial; it must not drag the merged average down.
  auto one_mote = run_avg(2, "SELECT avg(s.temp) FROM sensor s "
                             "WHERE s.temp > 14");
  ASSERT_TRUE(one_mote.is_ok()) << one_mote.status().message();
  double avg = 0;
  ASSERT_TRUE(
      device::value_as_double(one_mote.value().rows[0][0].second, &avg));
  EXPECT_DOUBLE_EQ(avg, 15.0);

  // No rows anywhere: total count is zero, the average is null.
  auto empty = run_avg(2, "SELECT avg(s.temp) FROM sensor s "
                          "WHERE s.temp > 100");
  ASSERT_TRUE(empty.is_ok()) << empty.status().message();
  ASSERT_EQ(empty.value().rows.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(
      empty.value().rows[0][0].second));
}

TEST(ShardPlaneTest, ContinuousRowsMergeInNondecreasingTimestampOrder) {
  PlaneWorld w(2);
  std::vector<Released> rows;
  core::ExecOptions opts;
  opts.owner = "tester";
  opts.on_row = [&](const std::string& q, const query::TimestampedRow& r) {
    rows.push_back({q, r.at, 0});
  };
  util::Result<core::ExecResult> out = util::internal_error("not called");
  w.plane->exec_async(
      "CREATE AQ push AS SELECT s.temp FROM sensor s WHERE s.accel_x > 100",
      opts, [&](util::Result<core::ExecResult> r) { out = std::move(r); });
  w.sys.run_for(Duration::seconds(7.0));
  ASSERT_TRUE(out.is_ok()) << out.status().message();
  EXPECT_EQ(w.plane->worker(0).fragment_count(), 1u);
  EXPECT_EQ(w.plane->worker(1).fragment_count(), 1u);

  // All six motes see spike edges at t=2, 4, 6; at least the first two
  // rounds (12 rows) have drained past the merge frontier by now.
  ASSERT_GE(rows.size(), 12u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].at, rows[i - 1].at);  // merge order is by timestamp
    EXPECT_EQ(rows[i].query, "push");
  }
  const shard::CzarStats& cs = w.plane->czar().stats();
  EXPECT_GE(cs.rows_received, rows.size());
  EXPECT_GE(cs.heartbeats_received, 4u);
  EXPECT_EQ(cs.workers_marked_down, 0u);

  // DROP fans out to the workers and stops the stream.
  util::Result<core::ExecResult> dropped = util::internal_error("not called");
  w.plane->exec_async("DROP AQ push", {}, [&](util::Result<core::ExecResult> r) {
    dropped = std::move(r);
  });
  w.sys.run_for(Duration::seconds(1.0));
  ASSERT_TRUE(dropped.is_ok());
  std::size_t seen = rows.size();
  w.sys.run_for(Duration::seconds(3.0));
  EXPECT_EQ(rows.size(), seen);
  EXPECT_EQ(w.plane->worker(0).fragment_count(), 0u);
  EXPECT_EQ(w.plane->worker(1).fragment_count(), 0u);
}

TEST(ShardPlaneTest, PartitionedWorkerIsMarkedDownAndRecoveredOnHeal) {
  PlaneWorld w(2);
  std::vector<Released> rows;
  core::ExecOptions opts;
  opts.owner = "tester";
  opts.on_row = [&](const std::string& q, const query::TimestampedRow& r) {
    rows.push_back({q, r.at, 0});
  };
  util::Result<core::ExecResult> out = util::internal_error("not called");
  w.plane->exec_async(
      "CREATE AQ push AS SELECT s.temp FROM sensor s WHERE s.accel_x > 100",
      opts, [&](util::Result<core::ExecResult> r) { out = std::move(r); });
  w.sys.run_for(Duration::seconds(3.0));
  ASSERT_TRUE(out.is_ok()) << out.status().message();
  ASSERT_TRUE(w.plane->czar().worker_live(0));
  ASSERT_TRUE(w.plane->czar().worker_live(1));

  // Kill worker 0's network: its heartbeats stop; after miss_threshold
  // silent intervals the czar marks the shard down, and the dead shard's
  // watermark stops gating the merge frontier.
  w.sys.network().partition("shard-0");
  w.sys.run_for(Duration::seconds(6.0));
  EXPECT_FALSE(w.plane->czar().worker_live(0));
  EXPECT_TRUE(w.plane->czar().worker_live(1));
  EXPECT_GE(w.plane->czar().stats().workers_marked_down, 1u);
  std::size_t during_partition = rows.size();
  w.sys.run_for(Duration::seconds(3.0));
  EXPECT_GT(rows.size(), during_partition)
      << "surviving shard's rows must keep draining";

  // Heal: the first message back triggers the generation-bump recovery
  // handshake and the czar re-registers the AQ on the worker.
  w.sys.network().heal("shard-0");
  w.sys.run_for(Duration::seconds(4.0));
  EXPECT_TRUE(w.plane->czar().worker_live(0));
  EXPECT_GE(w.plane->czar().stats().reregistrations, 1u);
  EXPECT_EQ(w.plane->worker(0).fragment_count(), 1u);
  // The worker re-registered under the new generation at least once more
  // than the initial fan-out.
  EXPECT_GE(w.plane->worker(0).stats().fragments_registered, 2u);

  // Rows from shard 0's motes flow again: total rate recovers.
  std::size_t after_heal = rows.size();
  w.sys.run_for(Duration::seconds(3.0));
  EXPECT_GT(rows.size(), after_heal);
}

// ------------------------------------------- service-layer num_shards

TEST(ShardServiceTest, SessionsRouteThroughTheCzar) {
  core::Aorta sys(core::Config{});
  ServiceConfig cfg;
  cfg.num_shards = 2;
  QueryService service(&sys, cfg);
  ASSERT_NE(service.plane(), nullptr);
  for (int i = 0; i < 4; ++i) {
    std::string id = "m" + std::to_string(i);
    ASSERT_TRUE(service.plane()->add_mote(id, {double(i), 0, 1}).is_ok());
    service.plane()->mote(id)->reliability().glitch_prob = 0.0;
    (void)service.plane()->mote(id)->set_signal(
        "temp", devices::constant_signal(20.0 + i));
    (void)sys.network().set_link(id, Plane::backplane());
  }

  SessionId id = service.connect("acme");
  ASSERT_TRUE(service.submit(id, "SELECT s.temp FROM sensor s").is_ok());
  ASSERT_TRUE(service
                  .submit(id, "CREATE AQ watch AS SELECT s.temp FROM sensor s "
                              "WHERE s.temp > 0")
                  .is_ok());
  sys.run_for(Duration::seconds(6.0));

  std::vector<Delivery> mail = service.session(id)->drain();
  bool saw_select = false, saw_row = false;
  for (const Delivery& d : mail) {
    if (d.kind == Delivery::Kind::kResult && !d.rows.empty()) {
      saw_select = true;
      EXPECT_EQ(d.rows.size(), 4u);
    }
    if (d.kind == Delivery::Kind::kRow) {
      saw_row = true;
      EXPECT_EQ(d.query, "s1/watch");  // session namespace prefix preserved
    }
    EXPECT_NE(d.kind, Delivery::Kind::kError) << d.message;
  }
  EXPECT_TRUE(saw_select);
  EXPECT_TRUE(saw_row);
  EXPECT_EQ(service.plane()->czar().stats().selects, 1u);

  // Disconnect tears the session's fragments down on every worker.
  ASSERT_TRUE(service.disconnect(id).is_ok());
  sys.run_for(Duration::seconds(1.0));
  EXPECT_EQ(service.plane()->worker(0).fragment_count(), 0u);
  EXPECT_EQ(service.plane()->worker(1).fragment_count(), 0u);

  // The sharded sections show up in the deterministic metrics walk.
  std::string json = service.stats_json();
  for (const char* key : {"\"shard\"", "\"czar\"", "\"merge\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ShardServiceTest, SingleShardAblationServesTheSameInterface) {
  core::Aorta sys(core::Config{});
  ServiceConfig cfg;
  cfg.num_shards = 1;  // all devices on shard 0: the ablation baseline
  QueryService service(&sys, cfg);
  ASSERT_TRUE(service.plane()->add_mote("m1", {0, 0, 1}).is_ok());
  service.plane()->mote("m1")->reliability().glitch_prob = 0.0;
  (void)service.plane()->mote("m1")->set_signal(
      "temp", devices::constant_signal(25.0));
  (void)sys.network().set_link("m1", Plane::backplane());

  SessionId id = service.connect("acme");
  ASSERT_TRUE(service.submit(id, "SELECT s.temp FROM sensor s").is_ok());
  sys.run_for(Duration::seconds(3.0));
  std::vector<Delivery> mail = service.session(id)->drain();
  bool saw_select = false;
  for (const Delivery& d : mail) {
    if (d.kind == Delivery::Kind::kResult) {
      saw_select = true;
      ASSERT_EQ(d.rows.size(), 1u);
      double v = 0;
      ASSERT_TRUE(device::value_as_double(d.rows[0][0].second, &v));
      EXPECT_EQ(v, 25.0);
    }
  }
  EXPECT_TRUE(saw_select);
}

}  // namespace
}  // namespace aorta
