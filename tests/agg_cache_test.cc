// Tests for continuous windowed aggregates and the query-hash
// shared-aggregate cache (DESIGN.md §15, src/query/agg_cache.h):
//
//  - window/GROUP BY grammar and the shape rules (windows must divide the
//    epoch cadence, projections must aggregate or group, one-shot SELECT
//    keeps rejecting GROUP BY/WINDOW);
//  - tumbling/sliding emission values against hand-computed expectations;
//  - sharing: co-hashed AQs hit one entry, GROUP BY subsets attach as
//    subsumed groupings, incompatible groupings split the hash bucket;
//  - the `Config::aggregate_cache = false` ablation is byte-identical in
//    delivered events while paying N× the per-tuple evaluations;
//  - determinism: the sharded service emits byte-identical window rows at
//    1/2/8 runtime threads, cache on or off;
//  - churn: register/drop 1k hashed-identical AQs leaves no entry,
//    subscription or group-state debris behind.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "core/aorta.h"
#include "server/service.h"
#include "server/session.h"
#include "shard/plane.h"

namespace aorta {
namespace {

using device::Value;
using server::Delivery;
using server::QueryService;
using server::ServiceConfig;
using server::SessionId;
using shard::Plane;
using util::Duration;
using util::TimePoint;

std::string value_key(const Value& v) {
  char buf[96];
  if (std::holds_alternative<std::monostate>(v)) return "null";
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  const auto& loc = std::get<device::Location>(v);
  std::snprintf(buf, sizeof(buf), "(%.17g,%.17g,%.17g)", loc.x, loc.y, loc.z);
  return buf;
}

std::string row_key(const query::TimestampedRow& r) {
  std::string key = std::to_string(r.at.to_micros());
  for (const auto& [name, value] : r.row) {
    key += "|" + name + "=" + value_key(value);
  }
  if (r.degraded) key += "|degraded";
  return key;
}

double as_double(const Value& v) {
  if (const double* d = std::get_if<double>(&v)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  ADD_FAILURE() << "value is not numeric";
  return 0.0;
}

// Two buildings (hops 1 and 2) of lossless constant-temperature motes:
// hops-1 motes read 20.0 and 24.0, the hops-2 mote reads 30.0. One sample
// per mote per 1s epoch, so window arithmetic is exact.
struct AggWorld : public ::testing::Test {
  static core::Config config_with_seed(std::uint64_t seed) {
    core::Config config;
    config.seed = seed;
    return config;
  }

  AggWorld() : sys(config_with_seed(11)) { setup(sys); }

  static void setup(core::Aorta& s) {
    add(s, "m1", 1, 20.0);
    add(s, "m2", 1, 24.0);
    add(s, "m3", 2, 30.0);
  }
  static void add(core::Aorta& s, const std::string& id, int hops,
                  double temp) {
    ASSERT_TRUE(s.add_mote(id, {double(hops), 0, 1}, hops).is_ok());
    s.mote(id)->reliability().glitch_prob = 0.0;
    (void)s.mote(id)->set_signal("temp", devices::constant_signal(temp));
    (void)s.mote(id)->set_signal("light", devices::constant_signal(100.0));
    auto link = net::LinkModel::mote_radio();
    link.loss_prob = 0.0;
    (void)s.network().set_link(id, link);
  }

  core::Aorta sys;
};

// ------------------------------------------------------------ shape rules

TEST_F(AggWorld, WindowGrammarAcceptsSecondSuffixAndDefaultsToTumbling) {
  EXPECT_TRUE(sys.exec("CREATE AQ a AS SELECT avg(s.temp) FROM sensor s "
                       "GROUP BY s.hops WINDOW 4s EVERY 2s")
                  .is_ok());
  // WINDOW without EVERY tumbles (slide == window).
  EXPECT_TRUE(sys.exec("CREATE AQ b AS SELECT sum(s.temp) FROM sensor s "
                       "WINDOW 3")
                  .is_ok());
  EXPECT_EQ(sys.executor().agg_subscribers(), 2u);
}

TEST_F(AggWorld, WindowMustDivideEpochAndSlide) {
  auto bad_epoch = sys.exec(
      "CREATE AQ a AS SELECT avg(s.temp) FROM sensor s WINDOW 2.5s");
  ASSERT_FALSE(bad_epoch.is_ok());
  EXPECT_NE(bad_epoch.status().message().find("multiple of the AQ epoch"),
            std::string::npos);

  auto bad_slide = sys.exec(
      "CREATE AQ b AS SELECT avg(s.temp) FROM sensor s WINDOW 3s EVERY 2s");
  ASSERT_FALSE(bad_slide.is_ok());
  EXPECT_NE(bad_slide.status().message().find("multiple of EVERY"),
            std::string::npos);
}

TEST_F(AggWorld, ProjectionsMustAggregateOrGroup) {
  // A plain column next to an aggregate is ambiguous per group.
  auto mixed = sys.exec(
      "CREATE AQ a AS SELECT avg(s.temp), s.id FROM sensor s GROUP BY s.hops");
  ASSERT_FALSE(mixed.is_ok());
  EXPECT_NE(mixed.status().message().find("GROUP BY column"),
            std::string::npos);

  // GROUP BY / WINDOW without any aggregate projection.
  auto no_agg = sys.exec(
      "CREATE AQ b AS SELECT s.temp FROM sensor s GROUP BY s.hops");
  EXPECT_FALSE(no_agg.is_ok());
  auto no_agg_w =
      sys.exec("CREATE AQ c AS SELECT s.temp FROM sensor s WINDOW 2s");
  EXPECT_FALSE(no_agg_w.is_ok());
}

TEST_F(AggWorld, OneShotSelectStillRejectsGroupByAndWindow) {
  auto grouped =
      sys.exec("SELECT avg(s.temp) FROM sensor s GROUP BY s.hops");
  ASSERT_FALSE(grouped.is_ok());
  EXPECT_NE(grouped.status().message().find("continuous"), std::string::npos);
  EXPECT_FALSE(
      sys.exec("SELECT avg(s.temp) FROM sensor s WINDOW 2s").is_ok());
}

// -------------------------------------------------------- window values

TEST_F(AggWorld, TumblingWindowValuesAreExact) {
  // 4-sample tumbling window, grouped by building: the hops-1 group sees
  // 2 motes x 4 samples (count 8, avg 22), the hops-2 group 1 mote x 4
  // (count 4, avg 30).
  ASSERT_TRUE(sys.exec("CREATE AQ w AS SELECT s.hops, count(*), avg(s.temp), "
                       "min(s.temp), max(s.temp), sum(s.temp) "
                       "FROM sensor s GROUP BY s.hops WINDOW 4s")
                  .is_ok());
  sys.run_for(Duration::seconds(20));

  auto rows = sys.executor().recent_results("w");
  ASSERT_GE(rows.size(), 4u);
  // The last two rows are one full window's two groups (group-key order).
  const auto& g1 = rows[rows.size() - 2];
  const auto& g2 = rows[rows.size() - 1];
  ASSERT_EQ(g1.row.size(), 6u);
  EXPECT_EQ(g1.row[0].first, "s.hops");
  EXPECT_EQ(g1.row[1].first, "count(*)");
  EXPECT_EQ(g1.row[2].first, "avg(s.temp)");

  EXPECT_EQ(as_double(g1.row[0].second), 1.0);
  EXPECT_EQ(as_double(g1.row[1].second), 8.0);
  EXPECT_EQ(as_double(g1.row[2].second), 22.0);
  EXPECT_EQ(as_double(g1.row[3].second), 20.0);
  EXPECT_EQ(as_double(g1.row[4].second), 24.0);
  EXPECT_EQ(as_double(g1.row[5].second), 176.0);

  EXPECT_EQ(as_double(g2.row[0].second), 2.0);
  EXPECT_EQ(as_double(g2.row[1].second), 4.0);
  EXPECT_EQ(as_double(g2.row[2].second), 30.0);
  EXPECT_EQ(as_double(g2.row[5].second), 120.0);
}

TEST_F(AggWorld, SlidingWindowEmitsEverySlideAndExpiresOldPanes) {
  // A spike rides accel_x for ~1 sample; a 3-sample window sliding by 1
  // must hold max() at the spike for as long as the spike's pane is inside
  // the window, then fall back to the base signal — the monotonic-deque
  // expiry path.
  auto script = std::make_unique<devices::ScriptedSignal>(0.0);
  script->add_spike(TimePoint::from_micros(8'000'000), Duration::seconds(1),
                    700.0);
  ASSERT_TRUE(sys.mote("m1")->set_signal("accel_x", std::move(script)).is_ok());
  ASSERT_TRUE(sys.exec("CREATE AQ w AS SELECT max(s.accel_x) FROM sensor s "
                       "WHERE s.id = 'm1' WINDOW 3s EVERY 1s")
                  .is_ok());
  sys.run_for(Duration::seconds(20));

  auto rows = sys.executor().recent_results("w");
  ASSERT_GE(rows.size(), 10u);
  int spiked = 0;
  for (const auto& r : rows) spiked += as_double(r.row[0].second) == 700.0;
  // The spike lands in 1-2 samples; each spiked sample stays in scope for
  // 3 sliding windows.
  EXPECT_GE(spiked, 3);
  EXPECT_LE(spiked, 6);
  // After the spike's panes expire the extremum falls back to the base.
  EXPECT_EQ(as_double(rows.back().row[0].second), 0.0);
}

// ----------------------------------------------------------- sharing

TEST_F(AggWorld, CoHashedTenantsShareOneEntry) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sys.exec("CREATE AQ t" + std::to_string(i) +
                         " AS SELECT avg(s.temp) FROM sensor s "
                         "GROUP BY s.hops WINDOW 4s EVERY 2s")
                    .is_ok());
  }
  EXPECT_EQ(sys.executor().agg_entries(), 1u);
  EXPECT_EQ(sys.executor().agg_subscribers(), 10u);
  const auto& stats = sys.executor().agg_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 9u);
  EXPECT_EQ(stats.subsumptions, 0u);

  sys.run_for(Duration::seconds(10));
  // One evaluation per (entry, tuple) regardless of tenant count: strictly
  // fewer evaluations than emitted rows x tuples would suggest.
  EXPECT_GT(sys.executor().agg_stats().tuples_evaluated, 0u);
  auto r0 = sys.executor().recent_results("t0");
  auto r9 = sys.executor().recent_results("t9");
  ASSERT_FALSE(r0.empty());
  ASSERT_EQ(r0.size(), r9.size());
  for (std::size_t i = 0; i < r0.size(); ++i) {
    EXPECT_EQ(row_key(r0[i]), row_key(r9[i]));
  }
}

TEST_F(AggWorld, GroupBySubsetSubsumesUnderTheSameEntry) {
  ASSERT_TRUE(sys.exec("CREATE AQ by_floor AS SELECT avg(s.temp) "
                       "FROM sensor s GROUP BY s.hops WINDOW 4s EVERY 2s")
                  .is_ok());
  // Same hash (GROUP BY is excluded from it), coarser grouping {} — its
  // columns are a subset of the entry's subscribed attributes.
  ASSERT_TRUE(sys.exec("CREATE AQ overall AS SELECT avg(s.temp) "
                       "FROM sensor s WINDOW 4s EVERY 2s")
                  .is_ok());
  EXPECT_EQ(sys.executor().agg_entries(), 1u);
  EXPECT_EQ(sys.executor().agg_stats().subsumptions, 1u);

  // GROUP BY a column outside the entry's subscription can't subsume: it
  // becomes a second entry in the same hash bucket.
  ASSERT_TRUE(sys.exec("CREATE AQ by_mote AS SELECT avg(s.temp) "
                       "FROM sensor s GROUP BY s.id WINDOW 4s EVERY 2s")
                  .is_ok());
  EXPECT_EQ(sys.executor().agg_entries(), 2u);
  EXPECT_EQ(sys.executor().agg_stats().misses, 2u);

  sys.run_for(Duration::seconds(12));
  auto by_floor = sys.executor().recent_results("by_floor");
  auto overall = sys.executor().recent_results("overall");
  ASSERT_FALSE(by_floor.empty());
  ASSERT_FALSE(overall.empty());
  // The subsumed AQ computes over all three motes: avg = 74/3.
  EXPECT_NEAR(as_double(overall.back().row[0].second), 74.0 / 3.0, 1e-12);
}

// -------------------------------------------------------- ablation parity

TEST(AggCacheAblationTest, CacheOffIsByteIdenticalButPaysPerTenant) {
  auto run = [](bool cache_on) {
    core::Config config = AggWorld::config_with_seed(19);
    config.aggregate_cache = cache_on;
    core::Aorta sys(config);
    AggWorld::setup(sys);
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(sys.exec("CREATE AQ t" + std::to_string(i) +
                           " AS SELECT avg(s.temp), count(*) FROM sensor s "
                           "GROUP BY s.hops WINDOW 4s EVERY 2s")
                      .is_ok());
    }
    sys.run_for(Duration::seconds(16));
    std::vector<std::string> events;
    for (int i = 0; i < 8; ++i) {
      for (const auto& r :
           sys.executor().recent_results("t" + std::to_string(i))) {
        events.push_back("t" + std::to_string(i) + "@" + row_key(r));
      }
    }
    return std::make_pair(events, sys.executor().agg_stats().tuples_evaluated);
  };

  auto [on_events, on_evals] = run(true);
  auto [off_events, off_evals] = run(false);
  ASSERT_FALSE(on_events.empty());
  EXPECT_EQ(on_events, off_events);
  // 8 private entries each evaluate every tuple; the shared entry does it
  // once. Exactly 8x here since every AQ is hash-identical.
  EXPECT_EQ(off_evals, 8 * on_evals);
}

// ------------------------------------------------------------- churn

TEST_F(AggWorld, ThousandTenantChurnLeavesNoDebris) {
  sys.run_for(Duration::seconds(2));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(sys.exec("CREATE AQ c" + std::to_string(i) +
                         " AS SELECT avg(s.light) FROM sensor s "
                         "GROUP BY s.hops WINDOW 6s EVERY 3s")
                    .is_ok());
  }
  EXPECT_EQ(sys.executor().agg_entries(), 1u);
  EXPECT_EQ(sys.executor().agg_subscribers(), 1000u);
  EXPECT_EQ(sys.executor().agg_stats().misses, 1u);
  EXPECT_EQ(sys.executor().agg_stats().hits, 999u);

  sys.run_for(Duration::seconds(4));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(sys.exec("DROP AQ c" + std::to_string(i)).is_ok());
  }
  // The churn guarantee: the last detach tears down the entry, its broker
  // subscription and every group accumulator.
  EXPECT_EQ(sys.executor().agg_entries(), 0u);
  EXPECT_EQ(sys.executor().agg_subscribers(), 0u);
  EXPECT_EQ(sys.metrics().gauge_value("broker.agg_cache.live_windows"), 0);
  sys.run_for(Duration::seconds(4));  // no stale callbacks fire
}

// --------------------------------------------------------- determinism

std::vector<std::string> run_sharded_agg(int runtime_threads,
                                         bool aggregate_cache,
                                         std::uint64_t seed) {
  core::Config config;
  config.seed = seed;
  config.runtime_threads = runtime_threads;
  config.aggregate_cache = aggregate_cache;
  core::Aorta sys(config);
  ServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.mailbox_capacity = 1 << 20;
  QueryService service(&sys, cfg);

  for (int i = 0; i < 8; ++i) {
    std::string id = "m" + std::to_string(i);
    EXPECT_TRUE(
        service.plane()->add_mote(id, {double(i), 0, 1}, 1 + i % 3).is_ok());
    devices::Mica2Mote* mote = service.plane()->mote(id);
    mote->reliability().glitch_prob = 0.0;
    (void)mote->set_signal("temp", devices::constant_signal(15.0 + i));
    (void)sys.network().set_link(id, Plane::backplane());
  }

  SessionId id = service.connect("acme");
  for (int k = 0; k < 6; ++k) {
    EXPECT_TRUE(service
                    .submit(id, "CREATE AQ agg" + std::to_string(k) +
                                    " AS SELECT s.hops, avg(s.temp), count(*) "
                                    "FROM sensor s GROUP BY s.hops "
                                    "WINDOW 4s EVERY 2s")
                    .is_ok());
  }
  EXPECT_TRUE(service
                  .submit(id, "CREATE AQ total AS SELECT sum(s.temp) "
                              "FROM sensor s WINDOW 3s")
                  .is_ok());
  sys.run_for(Duration::seconds(14.0));

  std::vector<std::string> events;
  for (const Delivery& d : service.session(id)->drain()) {
    EXPECT_NE(d.kind, Delivery::Kind::kError) << d.message;
    if (d.kind != Delivery::Kind::kRow) continue;
    std::string key = d.query + "@" + std::to_string(d.at.to_micros());
    for (const query::Row& row : d.rows) {
      for (const auto& [name, value] : row) {
        key += "|" + name + "=" + value_key(value);
      }
    }
    events.push_back(key);
  }
  return events;
}

TEST(AggCacheDeterminismTest, ShardedWindowsAreByteIdenticalAcrossThreads) {
  std::vector<std::string> one = run_sharded_agg(1, true, 42);
  std::vector<std::string> two = run_sharded_agg(2, true, 42);
  std::vector<std::string> eight = run_sharded_agg(8, true, 42);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(AggCacheDeterminismTest, AblationMatchesShardedCacheByteForByte) {
  std::vector<std::string> cached = run_sharded_agg(2, true, 42);
  std::vector<std::string> ablated = run_sharded_agg(2, false, 42);
  ASSERT_FALSE(cached.empty());
  EXPECT_EQ(cached, ablated);
}

}  // namespace
}  // namespace aorta
