// Tests for the multi-tenant query service layer (src/server): sessions
// and mailboxes, admission control (bounded queue, policies, quotas,
// weighted-fair dequeue), result/row delivery, namespace isolation, and
// the drop-AQ-mid-epoch executor regression the service depends on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/aorta.h"
#include "server/admission.h"
#include "server/service.h"
#include "server/session.h"
#include "server/workload_gen.h"
#include "util/bounded_queue.h"

namespace aorta {
namespace {

using server::AdmissionConfig;
using server::AdmissionController;
using server::Delivery;
using server::QueryService;
using server::ServiceConfig;
using server::Session;
using server::SessionId;
using server::SessionState;
using server::Submission;
using util::Duration;
using util::OverflowPolicy;
using util::TimePoint;

std::unique_ptr<core::Aorta> make_world() {
  auto sys = std::make_unique<core::Aorta>(core::Config{});
  (void)sys->add_mote("m1", {0, 0, 1});
  (void)sys->add_mote("m2", {3, 0, 1});
  (void)sys->mote("m1")->set_signal("temp", devices::constant_signal(25.0));
  (void)sys->mote("m2")->set_signal("temp", devices::constant_signal(19.0));
  return sys;
}

// ------------------------------------------------------- bounded queue

TEST(BoundedQueueTest, RejectNewKeepsOldItems) {
  util::BoundedQueue<int> q(2, OverflowPolicy::kRejectNew);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.shed(), 0u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, ShedOldestAdmitsNewAndCounts) {
  util::BoundedQueue<int> q(2, OverflowPolicy::kShedOldest);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));  // sheds 1
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

// ------------------------------------------------------------ sessions

TEST(SessionTest, MailboxShedsOldestAndAccounts) {
  Session s(7, "acme", 2);
  EXPECT_EQ(s.name_prefix(), "s7/");
  for (int i = 0; i < 3; ++i) {
    Delivery d;
    d.kind = Delivery::Kind::kResult;
    d.statement_id = static_cast<std::uint64_t>(i + 1);
    s.deliver(std::move(d));
  }
  EXPECT_EQ(s.mailbox_size(), 2u);
  EXPECT_EQ(s.mailbox_dropped(), 1u);
  std::vector<Delivery> mail = s.drain();
  ASSERT_EQ(mail.size(), 2u);
  EXPECT_EQ(mail[0].statement_id, 2u);  // oldest surviving first
  EXPECT_EQ(mail[1].statement_id, 3u);
  EXPECT_EQ(s.mailbox_size(), 0u);
  EXPECT_EQ(s.stats().completed, 3u);
}

TEST(SessionTest, NotifyObservesEveryDelivery) {
  Session s(1, "acme", 8);
  int seen = 0;
  s.set_notify([&](const Delivery&) { ++seen; });
  s.deliver(Delivery{});
  s.deliver(Delivery{});
  EXPECT_EQ(seen, 2);
}

// ----------------------------------------------------------- admission

Submission make_submission(const std::string& tenant, std::uint64_t seq,
                           query::Statement::Kind kind =
                               query::Statement::Kind::kSelect) {
  Submission s;
  s.tenant = tenant;
  s.seq = seq;
  s.kind = kind;
  return s;
}

TEST(AdmissionTest, WeightedFairDequeueHonorsWeights) {
  AdmissionConfig cfg;
  cfg.queue_capacity = 64;
  AdmissionController ctl(cfg);
  ctl.set_tenant_weight("heavy", 3.0);
  std::uint64_t seq = 1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ctl.submit(make_submission("heavy", seq++)));
    ASSERT_TRUE(ctl.submit(make_submission("light", seq++)));
  }
  int heavy = 0, light = 0;
  for (int i = 0; i < 8; ++i) {
    auto next = ctl.next();
    ASSERT_TRUE(next.has_value());
    (next->tenant == "heavy" ? heavy : light)++;
  }
  // Stride scheduling: a weight-3 tenant gets ~3x the dispatches.
  EXPECT_GE(heavy, 5);
  EXPECT_GE(light, 1);
  EXPECT_EQ(heavy + light, 8);
}

TEST(AdmissionTest, FifoModeDispatchesInArrivalOrder) {
  AdmissionConfig cfg;
  cfg.fair_dequeue = false;
  AdmissionController ctl(cfg);
  ASSERT_TRUE(ctl.submit(make_submission("b", 1)));
  ASSERT_TRUE(ctl.submit(make_submission("a", 2)));
  ASSERT_TRUE(ctl.submit(make_submission("b", 3)));
  EXPECT_EQ(ctl.next()->seq, 1u);
  EXPECT_EQ(ctl.next()->seq, 2u);
  EXPECT_EQ(ctl.next()->seq, 3u);
}

TEST(AdmissionTest, ShedOldestTargetsMostBackloggedTenant) {
  AdmissionConfig cfg;
  cfg.queue_capacity = 4;
  cfg.policy = OverflowPolicy::kShedOldest;
  AdmissionController ctl(cfg);
  ASSERT_TRUE(ctl.submit(make_submission("flood", 1)));
  ASSERT_TRUE(ctl.submit(make_submission("flood", 2)));
  ASSERT_TRUE(ctl.submit(make_submission("flood", 3)));
  ASSERT_TRUE(ctl.submit(make_submission("light", 4)));
  std::vector<std::string> shed_tenants;
  ASSERT_TRUE(ctl.submit(make_submission("light", 5),
                         [&](const Submission& s) {
                           shed_tenants.push_back(s.tenant);
                         }));
  // The flooding tenant loses its own oldest; the light tenant keeps both.
  ASSERT_EQ(shed_tenants.size(), 1u);
  EXPECT_EQ(shed_tenants[0], "flood");
  EXPECT_EQ(ctl.queued_for("flood"), 2u);
  EXPECT_EQ(ctl.queued_for("light"), 2u);
  EXPECT_EQ(ctl.stats().shed, 1u);
}

TEST(AdmissionTest, RejectNewRefusesWhenFull) {
  AdmissionConfig cfg;
  cfg.queue_capacity = 1;
  AdmissionController ctl(cfg);
  EXPECT_TRUE(ctl.submit(make_submission("a", 1)));
  EXPECT_FALSE(ctl.submit(make_submission("a", 2)));
  EXPECT_EQ(ctl.stats().rejected, 1u);
}

TEST(AdmissionTest, IneligibleHeadIsSkippedWithoutLosingItsPlace) {
  AdmissionController ctl(AdmissionConfig{});
  ASSERT_TRUE(ctl.submit(make_submission("busy", 1)));
  ASSERT_TRUE(ctl.submit(make_submission("idle", 2)));
  auto only_idle = [](const Submission& s) { return s.tenant != "busy"; };
  auto next = ctl.next(only_idle);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->tenant, "idle");
  EXPECT_FALSE(ctl.next(only_idle).has_value());
  // Once eligible again, the deferred submission is still there.
  EXPECT_EQ(ctl.next()->tenant, "busy");
}

// ------------------------------------------------------------- service

TEST(QueryServiceTest, SelectRoundTripDeliversRows) {
  auto world = make_world();
  core::Aorta& sys = *world;
  QueryService service(&sys, ServiceConfig{});
  SessionId id = service.connect("acme");
  auto submitted = service.submit(id, "SELECT s.temp FROM sensor s");
  ASSERT_TRUE(submitted.is_ok()) << submitted.status().to_string();
  sys.run_for(Duration::seconds(5));
  Session* s = service.session(id);
  ASSERT_NE(s, nullptr);
  std::vector<Delivery> mail = s->drain();
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].kind, Delivery::Kind::kResult);
  EXPECT_EQ(mail[0].statement_id, submitted.value());
  EXPECT_EQ(mail[0].rows.size(), 2u);  // two motes
  EXPECT_EQ(service.tenant_stats().at("acme").completed, 1u);
}

TEST(QueryServiceTest, ParseErrorsCarryStatementFragment) {
  auto world = make_world();
  core::Aorta& sys = *world;
  QueryService service(&sys, ServiceConfig{});
  SessionId id = service.connect("acme");
  auto bad = service.submit(id, "SELECT s.temp FROM WHERE");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("at offset"), std::string::npos)
      << bad.status().message();
  EXPECT_EQ(service.tenant_stats().at("acme").errors, 1u);
}

TEST(QueryServiceTest, LifecycleGatesSubmission) {
  auto world = make_world();
  core::Aorta& sys = *world;
  QueryService service(&sys, ServiceConfig{});
  SessionId id = service.connect("acme");
  EXPECT_FALSE(service.submit(9999, "SELECT s.temp FROM sensor s").is_ok());
  ASSERT_TRUE(service.drain_session(id).is_ok());
  EXPECT_FALSE(service.submit(id, "SELECT s.temp FROM sensor s").is_ok());
  ASSERT_TRUE(service.disconnect(id).is_ok());
  EXPECT_FALSE(service.drain_session(id).is_ok());
  EXPECT_EQ(service.active_sessions(), 0u);
}

TEST(QueryServiceTest, RejectNewSurfacesBusyAtSubmit) {
  auto world = make_world();
  core::Aorta& sys = *world;
  ServiceConfig cfg;
  cfg.admission.queue_capacity = 1;  // default kRejectNew
  QueryService service(&sys, cfg);
  SessionId id = service.connect("acme");
  ASSERT_TRUE(service.submit(id, "SELECT s.temp FROM sensor s").is_ok());
  auto second = service.submit(id, "SELECT s.temp FROM sensor s");
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), util::StatusCode::kBusy);
  EXPECT_EQ(service.session(id)->stats().rejected, 1u);
}

TEST(QueryServiceTest, ShedOldestDeliversErrorToVictim) {
  auto world = make_world();
  core::Aorta& sys = *world;
  ServiceConfig cfg;
  cfg.admission.queue_capacity = 1;
  cfg.admission.policy = OverflowPolicy::kShedOldest;
  QueryService service(&sys, cfg);
  SessionId id = service.connect("acme");
  auto first = service.submit(id, "SELECT s.temp FROM sensor s");
  auto second = service.submit(id, "SELECT s.temp FROM sensor s");
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  std::vector<Delivery> mail = service.session(id)->drain();
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].kind, Delivery::Kind::kError);
  EXPECT_EQ(mail[0].statement_id, first.value());
  EXPECT_NE(mail[0].message.find("shed"), std::string::npos);
  EXPECT_EQ(service.tenant_stats().at("acme").shed, 1u);
}

TEST(QueryServiceTest, AqQuotaCountsQueuedAndRegistered) {
  auto world = make_world();
  core::Aorta& sys = *world;
  ServiceConfig cfg;
  cfg.admission.max_aqs_per_tenant = 1;
  QueryService service(&sys, cfg);
  SessionId id = service.connect("acme");
  ASSERT_TRUE(service
                  .submit(id, "CREATE AQ one AS SELECT s.temp FROM sensor s "
                              "WHERE s.temp > 100")
                  .is_ok());
  // Still queued, but the quota already counts it.
  auto over = service.submit(
      id, "CREATE AQ two AS SELECT s.temp FROM sensor s WHERE s.temp > 100");
  ASSERT_FALSE(over.is_ok());
  EXPECT_EQ(over.status().code(), util::StatusCode::kBusy);
  sys.run_for(Duration::seconds(2));
  // Registered now; quota still enforced.
  EXPECT_FALSE(
      service
          .submit(id,
                  "CREATE AQ three AS SELECT s.temp FROM sensor s "
                  "WHERE s.temp > 100")
          .is_ok());
  // Dropping frees the slot.
  ASSERT_TRUE(service.submit(id, "DROP AQ one").is_ok());
  sys.run_for(Duration::seconds(2));
  EXPECT_TRUE(
      service
          .submit(id, "CREATE AQ four AS SELECT s.temp FROM sensor s "
                      "WHERE s.temp > 100")
          .is_ok());
}

TEST(QueryServiceTest, SessionsGetIsolatedAqNamespaces) {
  auto world = make_world();
  core::Aorta& sys = *world;
  QueryService service(&sys, ServiceConfig{});
  SessionId s1 = service.connect("acme");
  SessionId s2 = service.connect("globex");
  ASSERT_TRUE(service
                  .submit(s1, "CREATE AQ watch AS SELECT s.temp FROM sensor s "
                              "WHERE s.temp > 100")
                  .is_ok());
  sys.run_for(Duration::seconds(2));
  std::vector<std::string> names = sys.executor().aq_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "s1/watch");
  EXPECT_EQ(sys.executor().aq_owner("s1/watch"), "s1/");

  // Another session cannot drop it: its DROP resolves in its own namespace.
  ASSERT_TRUE(service.submit(s2, "DROP AQ watch").is_ok());
  sys.run_for(Duration::seconds(2));
  EXPECT_EQ(sys.executor().aq_names().size(), 1u);
  std::vector<Delivery> mail = service.session(s2)->drain();
  ASSERT_EQ(mail.size(), 1u);
  EXPECT_EQ(mail[0].kind, Delivery::Kind::kError);
}

TEST(QueryServiceTest, DisconnectDropsOwnedAqs) {
  auto world = make_world();
  core::Aorta& sys = *world;
  QueryService service(&sys, ServiceConfig{});
  SessionId id = service.connect("acme");
  ASSERT_TRUE(service
                  .submit(id, "CREATE AQ watch AS SELECT s.temp FROM sensor s "
                              "WHERE s.temp > 100")
                  .is_ok());
  sys.run_for(Duration::seconds(2));
  ASSERT_EQ(sys.executor().aq_names().size(), 1u);
  ASSERT_TRUE(service.disconnect(id).is_ok());
  EXPECT_TRUE(sys.executor().aq_names().empty());
  sys.run_for(Duration::seconds(2));  // no dangling evaluation
}

TEST(QueryServiceTest, ContinuousRowsReachTheOwningMailbox) {
  core::Aorta sys(core::Config{});
  (void)sys.add_mote("door", {0, 0, 1});
  auto accel = std::make_unique<devices::ScriptedSignal>(0.0);
  accel->add_spike(TimePoint() + Duration::seconds(3), Duration::seconds(1),
                   800.0);
  (void)sys.mote("door")->set_signal("accel_x", std::move(accel));

  QueryService service(&sys, ServiceConfig{});
  SessionId id = service.connect("acme");
  ASSERT_TRUE(service
                  .submit(id, "CREATE AQ push AS SELECT s.accel_x FROM "
                              "sensor s WHERE s.accel_x > 500")
                  .is_ok());
  sys.run_for(Duration::seconds(8));
  std::vector<Delivery> mail = service.session(id)->drain();
  bool saw_row = false;
  for (const Delivery& d : mail) {
    if (d.kind != Delivery::Kind::kRow) continue;
    saw_row = true;
    EXPECT_EQ(d.query, "s1/push");
    ASSERT_EQ(d.rows.size(), 1u);
  }
  EXPECT_TRUE(saw_row);
  EXPECT_GE(service.tenant_stats().at("acme").rows_delivered, 1u);
}

TEST(QueryServiceTest, StatsJsonIsWellFormedAndCovered) {
  auto world = make_world();
  core::Aorta& sys = *world;
  QueryService service(&sys, ServiceConfig{});
  SessionId id = service.connect("acme");
  ASSERT_TRUE(service.submit(id, "SELECT s.temp FROM sensor s").is_ok());
  sys.run_for(Duration::seconds(3));
  std::string json = service.stats_json();
  for (const char* key :
       {"\"sessions\"", "\"admission\"", "\"tenants\"", "\"acme\"",
        "\"admission_latency_ms\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

// --------------------------------------- drop AQ mid-epoch (regression)

// Dropping an AQ and immediately re-registering the same name while its
// epoch scan is in flight must not feed the old scan's tuples to the new
// query (generation check in ContinuousQueryExecutor::evaluate).
TEST(ExecutorRegressionTest, DropAndReregisterMidEpochDiscardsStaleScan) {
  core::Aorta sys(core::Config{});
  (void)sys.add_mote("m1", {0, 0, 1});
  (void)sys.mote("m1")->set_signal("accel_x", devices::constant_signal(600.0));

  ASSERT_TRUE(sys.exec("CREATE AQ q AS SELECT s.accel_x FROM sensor s "
                       "WHERE s.accel_x > 500")
                  .is_ok());
  sys.run_for(Duration::seconds(2.5));
  ASSERT_NE(sys.query_stats("q"), nullptr);
  ASSERT_GE(sys.query_stats("q")->epochs, 1u);

  // Epoch ticks land on whole seconds; the mote's scan reply is still in
  // flight ~0.5 ms after the tick. Swap the registration inside that
  // window: same name, impossible predicate.
  sys.loop().schedule(Duration::seconds(0.5005), [&]() {
    ASSERT_TRUE(sys.exec("DROP AQ q").is_ok());
    ASSERT_TRUE(sys.exec("CREATE AQ q AS SELECT s.accel_x FROM sensor s "
                         "WHERE s.accel_x > 100000")
                    .is_ok());
  });
  sys.run_for(Duration::seconds(4));

  // The stale scan must not have produced events or rows under the new
  // registration, and the new query must be ticking normally.
  const query::QueryStats* stats = sys.query_stats("q");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->events, 0u);
  EXPECT_GE(stats->epochs, 2u);
  EXPECT_TRUE(sys.executor().recent_results("q").empty());
}

// ------------------------------------------------------- workload gen

TEST(WorkloadGenTest, ClosedLoopClientsKeepSubmitting) {
  auto world = make_world();
  core::Aorta& sys = *world;
  QueryService service(&sys, ServiceConfig{});
  server::WorkloadConfig wc;
  wc.tenants = 2;
  wc.sessions_per_tenant = 3;
  wc.think = Duration::seconds(0.5);
  wc.aq_fraction = 0.0;
  wc.seed = 5;
  server::WorkloadGen gen(&service, &sys, wc);
  gen.start();
  EXPECT_EQ(service.active_sessions(), 6u);
  sys.run_for(Duration::seconds(10));
  gen.stop();
  EXPECT_GT(gen.stats().submitted, 6u);
  // Every submission resolves eventually in closed loop.
  std::uint64_t completed = 0;
  for (const auto& [tenant, ts] : service.tenant_stats()) {
    completed += ts.completed;
  }
  EXPECT_GT(completed, 0u);
}

}  // namespace
}  // namespace aorta
