// End-to-end span tracing over a full pipeline run:
//
//   * a 32-AQ workload exports a Chrome trace whose per-stage spans cover
//     >= 95% of every epoch's processing window (the acceptance bar for
//     the span taxonomy being complete: no untraced stage gaps);
//   * the exported file is valid Chrome trace-event JSON (CI re-validates
//     the artifact with tools/validate_trace.py);
//   * a disabled tracer adds zero allocations on the sweep path — the
//     instrumentation sites cost one branch, nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/aorta.h"
#include "obs/trace.h"
#include "util/time.h"

// ---- counting allocator -----------------------------------------------------
// Replacing global operator new in this TU counts every allocation in the
// test binary; the zero-alloc test diffs the counter around run_for().
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aorta {
namespace {

using obs::Span;
using obs::SpanCat;
using util::Duration;
using util::TimePoint;

std::unique_ptr<core::Aorta> make_system(bool tracing, int aqs) {
  core::Config cfg;
  cfg.seed = 1234;
  cfg.tracing = tracing;
  auto sys = std::make_unique<core::Aorta>(cfg);
  (void)sys->add_mote("m1", {1, 1, 1});
  (void)sys->add_mote("m2", {2, 2, 1});
  (void)sys->add_mote("m3", {3, 1, 2});
  (void)sys->add_mote("m4", {4, 2, 2});
  for (int i = 0; i < aqs; ++i) {
    auto r = sys->exec("CREATE AQ q" + std::to_string(i) +
                       " AS SELECT s.id, s.accel_x FROM sensor s "
                       "WHERE s.accel_x > " +
                       std::to_string(100 + i));
    EXPECT_TRUE(r.is_ok()) << r.status().message();
  }
  return sys;
}

// Union length of [lo, hi) intervals clipped to [w_lo, w_hi).
std::int64_t covered_micros(std::vector<std::pair<std::int64_t, std::int64_t>>
                                iv,
                            std::int64_t w_lo, std::int64_t w_hi) {
  std::sort(iv.begin(), iv.end());
  std::int64_t covered = 0, cursor = w_lo;
  for (const auto& [lo, hi] : iv) {
    std::int64_t a = std::max(lo, cursor), b = std::min(hi, w_hi);
    if (b > a) {
      covered += b - a;
      cursor = b;
    }
  }
  return covered;
}

TEST(TracePipelineTest, ThirtyTwoAqRunExportsSpansCoveringEpochWindows) {
  auto sys = make_system(/*tracing=*/true, /*aqs=*/32);
  sys->run_for(Duration::seconds(10));

  const std::vector<Span> spans = sys->tracer().snapshot();
  ASSERT_FALSE(spans.empty());

  // Every taxonomy stage that a plain sensor workload exercises shows up.
  bool saw[obs::kSpanCatCount] = {false};
  for (const Span& s : spans) saw[static_cast<int>(s.cat)] = true;
  EXPECT_TRUE(saw[static_cast<int>(SpanCat::kParse)]);
  EXPECT_TRUE(saw[static_cast<int>(SpanCat::kRegister)]);
  EXPECT_TRUE(saw[static_cast<int>(SpanCat::kSweep)]);
  EXPECT_TRUE(saw[static_cast<int>(SpanCat::kRpc)]);
  EXPECT_TRUE(saw[static_cast<int>(SpanCat::kEval)]);
  EXPECT_TRUE(saw[static_cast<int>(SpanCat::kEpoch)]);

  // Per-stage spans must cover >= 95% of each epoch's processing window
  // (tick start -> last flush). Zero-length epochs (nothing to do) carry
  // no window to cover.
  std::int64_t total_window = 0, total_covered = 0;
  std::size_t windows = 0;
  for (const Span& e : spans) {
    if (e.cat != SpanCat::kEpoch || e.dur.to_micros() <= 0) continue;
    const std::int64_t lo = e.start.to_micros();
    const std::int64_t hi = lo + e.dur.to_micros();
    std::vector<std::pair<std::int64_t, std::int64_t>> iv;
    for (const Span& s : spans) {
      if (s.cat == SpanCat::kEpoch || s.dur.to_micros() <= 0) continue;
      iv.emplace_back(s.start.to_micros(), s.start.to_micros() + s.dur.to_micros());
    }
    total_window += hi - lo;
    total_covered += covered_micros(std::move(iv), lo, hi);
    ++windows;
  }
  ASSERT_GT(windows, 0u);
  EXPECT_GE(static_cast<double>(total_covered),
            0.95 * static_cast<double>(total_window))
      << "per-stage spans cover " << total_covered << "/" << total_window
      << " virtual micros across " << windows << " epoch windows";

  // Export the artifact CI validates with tools/validate_trace.py.
  const std::string path = "obs_trace_32aq.json";
  ASSERT_TRUE(sys->tracer().export_file(path).is_ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TracePipelineTest, DisabledTracerAddsZeroAllocationsOnSweepPath) {
  // Two identical systems and workloads; the only difference is whether
  // the (disabled) tracer is attached to the sweep path's components.
  // Disabled instrumentation must allocate nothing, so the counts match.
  auto attached = make_system(/*tracing=*/false, /*aqs=*/4);
  auto detached = make_system(/*tracing=*/false, /*aqs=*/4);
  detached->scan_broker().set_tracer(nullptr);
  detached->executor().set_tracer(nullptr);
  detached->comm().engine().rpc().set_tracer(nullptr);

  // Warm both systems past one epoch so lazily-built state exists.
  attached->run_for(Duration::seconds(2));
  detached->run_for(Duration::seconds(2));

  const std::uint64_t before_attached = g_allocations.load();
  attached->run_for(Duration::seconds(5));
  const std::uint64_t attached_allocs = g_allocations.load() - before_attached;

  const std::uint64_t before_detached = g_allocations.load();
  detached->run_for(Duration::seconds(5));
  const std::uint64_t detached_allocs = g_allocations.load() - before_detached;

  EXPECT_EQ(attached_allocs, detached_allocs);
}

}  // namespace
}  // namespace aorta
