// Differential tests for compiled expression evaluation
// (query/eval_program.h): the tree-walking eval() in expr_eval.h is the
// oracle, and every compiled program must match it byte-for-byte — values
// rendered through value_to_string, errors through Status::to_string —
// including three-valued NULL semantics, error propagation, and
// short-circuit behaviour observable through side-effecting functions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/eval_program.h"
#include "query/parser.h"
#include "util/rng.h"

namespace aorta {
namespace {

using device::Value;
using query::BindingFrame;
using query::BinaryOp;
using query::Env;
using query::EvalProgram;
using query::Expr;
using query::ExprPtr;
using query::FunctionRegistry;

// Renders a Result the way the differential comparison wants it: the
// exact value string on success, the exact status string on error.
std::string render(const util::Result<Value>& r) {
  if (r.is_ok()) return "ok:" + device::value_to_string(r.value());
  return "err:" + r.status().to_string();
}

struct DiffFixture : public ::testing::Test {
  DiffFixture()
      : sensor_schema("sensor",
                      {{"id", device::AttrType::kString, false},
                       {"accel_x", device::AttrType::kDouble, true},
                       {"temp", device::AttrType::kDouble, true},
                       {"count", device::AttrType::kInt, false},
                       {"armed", device::AttrType::kBool, false}}),
        camera_schema("camera", {{"id", device::AttrType::kString, false},
                                 {"zoom", device::AttrType::kDouble, false},
                                 {"angle", device::AttrType::kDouble, true}}),
        sensor_tuple(&sensor_schema, "m1"),
        camera_tuple(&camera_schema, "cam1") {
    sensor_tuple.set_by_name("id", Value{std::string("m1")});
    sensor_tuple.set_by_name("accel_x", Value{600.0});
    // temp left NULL on purpose.
    sensor_tuple.set_by_name("count", Value{std::int64_t{7}});
    sensor_tuple.set_by_name("armed", Value{true});
    camera_tuple.set_by_name("id", Value{std::string("cam1")});
    camera_tuple.set_by_name("zoom", Value{2.5});
    // angle left NULL on purpose.

    (void)functions.add("twice", [](const std::vector<Value>& args) {
      double x = 0;
      device::value_as_double(args.at(0), &x);
      return util::Result<Value>(Value{2 * x});
    });
    (void)functions.add("boom", [](const std::vector<Value>&) {
      return util::Result<Value>(util::internal_error("boom() exploded"));
    });
    (void)functions.add("tick", [this](const std::vector<Value>& args) {
      ++tick_calls;
      double x = 0;
      if (!args.empty()) device::value_as_double(args.at(0), &x);
      return util::Result<Value>(Value{x + 1});
    });

    aliases = {"s", "c"};
    schemas = {{"s", &sensor_schema}, {"c", &camera_schema}};
    frame.size = 2;
    frame.set(0, &sensor_tuple);
    frame.set(1, &camera_tuple);
    env.bind("s", &sensor_tuple);
    env.bind("c", &camera_tuple);
  }

  // Compiles `expr` and, if it compiles, checks the program against the
  // oracle. Returns true iff the expression compiled (fallbacks are legal,
  // they just stay on the tree walker).
  bool check(const Expr& expr) {
    auto program = EvalProgram::compile(expr, aliases, schemas, functions);
    if (!program.is_ok()) return false;

    tick_calls = 0;
    auto oracle = query::eval(expr, env, functions);
    int oracle_ticks = tick_calls;

    tick_calls = 0;
    auto compiled = program.value().run(frame);
    int compiled_ticks = tick_calls;

    EXPECT_EQ(render(compiled), render(oracle))
        << expr.to_string() << "\n"
        << program.value().disassemble();
    // Short-circuiting must skip side effects identically... unless the
    // compiler constant-folded around the call (folding never evaluates
    // functions, so a folded short-circuit makes *fewer* calls, never
    // more, and never changes the result checked above).
    EXPECT_LE(compiled_ticks, oracle_ticks) << expr.to_string();
    if (program.value().folded_nodes() == 0) {
      EXPECT_EQ(compiled_ticks, oracle_ticks) << expr.to_string();
    }

    bool oracle_pred = query::eval_predicate(expr, env, functions);
    EXPECT_EQ(program.value().run_predicate(frame), oracle_pred)
        << expr.to_string();
    return true;
  }

  bool check_sql(const std::string& text) {
    auto e = query::parse_expression(text);
    EXPECT_TRUE(e.is_ok()) << text;
    return check(*e.value());
  }

  comm::Schema sensor_schema;
  comm::Schema camera_schema;
  comm::Tuple sensor_tuple;
  comm::Tuple camera_tuple;
  FunctionRegistry functions;
  std::vector<std::string> aliases;
  std::map<std::string, const comm::Schema*> schemas;
  BindingFrame frame;
  Env env;
  int tick_calls = 0;
};

// ------------------------------------------------------- targeted cases

TEST_F(DiffFixture, LiteralsAndColumns) {
  EXPECT_TRUE(check_sql("42"));
  EXPECT_TRUE(check_sql("'hello'"));
  EXPECT_TRUE(check_sql("TRUE"));
  EXPECT_TRUE(check_sql("s.accel_x"));
  EXPECT_TRUE(check_sql("accel_x"));  // unqualified, unique
  EXPECT_TRUE(check_sql("zoom"));
  EXPECT_TRUE(check_sql("c.zoom * 2"));
}

TEST_F(DiffFixture, NullSemantics) {
  // temp and c.angle are NULL: comparisons false, arithmetic NULL.
  EXPECT_TRUE(check_sql("s.temp > 0"));
  EXPECT_TRUE(check_sql("s.temp = s.temp"));
  EXPECT_TRUE(check_sql("s.temp + 1"));
  EXPECT_TRUE(check_sql("c.angle * s.accel_x"));
  EXPECT_TRUE(check_sql("NOT (s.temp > 0)"));
  // Unknown column on a bound alias is NULL, not an error.
  EXPECT_TRUE(check_sql("s.nope"));
  EXPECT_TRUE(check_sql("s.nope + 1 = 2"));
  // Division by zero is NULL.
  EXPECT_TRUE(check_sql("1 / 0"));
  EXPECT_TRUE(check_sql("s.accel_x / (s.accel_x - 600)"));
}

TEST_F(DiffFixture, ErrorsPropagateIdentically) {
  EXPECT_TRUE(check_sql("boom()"));
  EXPECT_TRUE(check_sql("boom() + 1"));
  EXPECT_TRUE(check_sql("1 + boom()"));
  EXPECT_TRUE(check_sql("NOT boom()"));
  EXPECT_TRUE(check_sql("twice(boom())"));
}

TEST_F(DiffFixture, ShortCircuitSkipsErrorsAndSideEffects) {
  // Constant-foldable short circuits: the erroring side never runs.
  EXPECT_TRUE(check_sql("TRUE OR boom()"));
  EXPECT_TRUE(check_sql("FALSE AND boom()"));
  // Data-dependent short circuits: tick() call counts must match.
  EXPECT_TRUE(check_sql("s.accel_x > 500 OR tick(1) > 0"));
  EXPECT_TRUE(check_sql("s.accel_x > 700 OR tick(1) > 0"));
  EXPECT_TRUE(check_sql("s.accel_x > 500 AND tick(1) > 0"));
  EXPECT_TRUE(check_sql("s.accel_x > 700 AND tick(1) > 0"));
  EXPECT_TRUE(check_sql("s.accel_x > 700 AND boom()"));
  EXPECT_TRUE(check_sql("s.accel_x > 500 OR boom()"));
}

TEST_F(DiffFixture, FallbacksAreReported) {
  // Ambiguous unqualified column ("id" is in both schemas): compile fails,
  // the expression stays on the tree walker.
  auto e = query::parse_expression("id = 'm1'");
  ASSERT_TRUE(e.is_ok());
  EXPECT_FALSE(
      EvalProgram::compile(*e.value(), aliases, schemas, functions).is_ok());
  // Unknown function: same.
  auto f = query::parse_expression("nosuchfn(1)");
  ASSERT_TRUE(f.is_ok());
  EXPECT_FALSE(
      EvalProgram::compile(*f.value(), aliases, schemas, functions).is_ok());
  // Alias outside the binding layout: the *interpreter* errors per row on
  // this, so the compiler keeps it compilable with a matching error.
  EXPECT_TRUE(check_sql("zz.accel_x"));
  EXPECT_TRUE(check_sql("zz.accel_x > 1"));
}

TEST_F(DiffFixture, ConstantFolding) {
  auto e = query::parse_expression("1 + 2 * 3");
  ASSERT_TRUE(e.is_ok());
  auto program = EvalProgram::compile(*e.value(), aliases, schemas, functions);
  ASSERT_TRUE(program.is_ok());
  EXPECT_EQ(program.value().instruction_count(), 1u);  // one kPushConst
  EXPECT_GT(program.value().folded_nodes(), 0u);
  EXPECT_TRUE(check(*e.value()));
  // Folding must not swallow per-row errors: 1/0 stays NULL (which is
  // foldable), but boom() is never folded.
  EXPECT_TRUE(check_sql("(1 + 2) = 3 AND s.accel_x > 0"));
}

TEST_F(DiffFixture, UnboundFrameSlotMatchesUnboundEnv) {
  // Evaluate with only the sensor bound: c.* loads must error identically.
  BindingFrame partial;
  partial.size = 2;
  partial.set(0, &sensor_tuple);
  Env partial_env;
  partial_env.bind("s", &sensor_tuple);

  for (const char* text : {"c.zoom", "c.zoom > 1", "zoom", "c.nope",
                           "s.accel_x > 1 AND c.zoom > 1"}) {
    auto e = query::parse_expression(text);
    ASSERT_TRUE(e.is_ok()) << text;
    auto program =
        EvalProgram::compile(*e.value(), aliases, schemas, functions);
    ASSERT_TRUE(program.is_ok()) << text;
    auto oracle = query::eval(*e.value(), partial_env, functions);
    EXPECT_EQ(render(program.value().run(partial)), render(oracle)) << text;
  }
}

// --------------------------------------------------- randomized sweep

// Depth-bounded random expression generator. Mostly-valid references so
// the bulk of the generated population compiles; a sprinkle of unknown
// columns and unbound aliases exercises the NULL-load and error paths.
class ExprGen {
 public:
  explicit ExprGen(util::Rng* rng) : rng_(rng) {}

  ExprPtr gen(int depth) {
    if (depth <= 0 || rng_->chance(0.3)) return leaf();
    switch (rng_->uniform_int(0, 7)) {
      case 0:
        return Expr::make_not(gen(depth - 1));
      case 1:
      case 2:
        return Expr::make_binary(logical(), gen(depth - 1), gen(depth - 1));
      case 3:
      case 4:
        return Expr::make_binary(comparison(), gen(depth - 1), gen(depth - 1));
      case 5:
      case 6:
        return Expr::make_binary(arith(), gen(depth - 1), gen(depth - 1));
      default: {
        std::vector<ExprPtr> args;
        args.push_back(gen(depth - 1));
        return Expr::make_func(rng_->chance(0.2) ? "boom" : "twice",
                               std::move(args));
      }
    }
  }

 private:
  ExprPtr leaf() {
    switch (rng_->uniform_int(0, 9)) {
      case 0:
        return Expr::make_literal(Value{});  // NULL
      case 1:
        return Expr::make_literal(Value{rng_->chance(0.5)});
      case 2:
        return Expr::make_literal(Value{rng_->uniform_int(-5, 5)});
      case 3:
        return Expr::make_literal(Value{rng_->uniform(-10.0, 10.0)});
      case 4:
        return Expr::make_literal(
            Value{std::string(rng_->chance(0.5) ? "m1" : "zzz")});
      case 5:
        return Expr::make_column("s", pick({"accel_x", "temp", "count",
                                            "armed", "id", "nope"}));
      case 6:
        return Expr::make_column("c", pick({"zoom", "angle", "id"}));
      case 7:
        return Expr::make_column("", pick({"accel_x", "temp", "zoom",
                                           "angle", "armed"}));
      case 8:
        return Expr::make_column("zz", "boomcol");  // unbound alias
      default:
        return Expr::make_literal(Value{rng_->uniform(0.0, 1000.0)});
    }
  }

  std::string pick(std::initializer_list<const char*> names) {
    auto it = names.begin();
    std::advance(it, rng_->index(names.size()));
    return *it;
  }

  BinaryOp logical() {
    return rng_->chance(0.5) ? BinaryOp::kAnd : BinaryOp::kOr;
  }
  BinaryOp comparison() {
    static const BinaryOp ops[] = {BinaryOp::kEq, BinaryOp::kNe,
                                   BinaryOp::kLt, BinaryOp::kLe,
                                   BinaryOp::kGt, BinaryOp::kGe};
    return ops[rng_->index(6)];
  }
  BinaryOp arith() {
    static const BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                   BinaryOp::kMul, BinaryOp::kDiv};
    return ops[rng_->index(4)];
  }

  util::Rng* rng_;
};

TEST_F(DiffFixture, RandomizedDifferential) {
  util::Rng rng(20260805);
  ExprGen gen(&rng);
  constexpr int kTotal = 12000;
  int compiled = 0;
  for (int i = 0; i < kTotal; ++i) {
    ExprPtr e = gen.gen(1 + static_cast<int>(rng.uniform_int(0, 4)));
    if (check(*e)) ++compiled;
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "divergence at expression " << i << ": " << e->to_string();
    }
  }
  // The acceptance gate: >= 10k expressions actually ran through both
  // evaluators and matched byte-for-byte.
  EXPECT_GE(compiled, 10000) << "of " << kTotal << " generated";
}

}  // namespace
}  // namespace aorta
