// Tests for the simulated device network and the RPC layer.
#include <gtest/gtest.h>

#include "net/rpc.h"

namespace aorta::net {
namespace {

using util::Duration;

// Records everything it receives.
class Recorder : public Endpoint {
 public:
  void on_message(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

// Replies to every request after an optional handling delay.
class Echo : public Endpoint {
 public:
  Echo(Network* network, util::EventLoop* loop, Duration delay = Duration::zero())
      : network_(network), loop_(loop), delay_(delay) {}
  void on_message(const Message& msg) override {
    Message reply = make_reply(msg, "echo_ack");
    if (delay_ == Duration::zero()) {
      network_->send(std::move(reply));
    } else {
      loop_->schedule(delay_, [this, reply]() { network_->send(reply); });
    }
  }

 private:
  Network* network_;
  util::EventLoop* loop_;
  Duration delay_;
};

struct NetFixture : public ::testing::Test {
  NetFixture() : loop(&clock), network(&loop, util::Rng(1)) {}
  util::SimClock clock;
  util::EventLoop loop;
  Network network;
};

TEST_F(NetFixture, DeliversWithLatency) {
  Recorder sink;
  LinkModel link = LinkModel::perfect();
  link.latency_mean_s = 0.010;
  ASSERT_TRUE(network.attach("sink", &sink, link).is_ok());

  Message msg;
  msg.dst = "sink";
  msg.kind = "ping";
  network.send(msg);
  EXPECT_TRUE(sink.received.empty());  // not synchronous
  loop.run_all();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].kind, "ping");
  EXPECT_GE(clock.now().to_seconds(), 0.010);
}

TEST_F(NetFixture, AttachRejectsDuplicatesAndNull) {
  Recorder sink;
  ASSERT_TRUE(network.attach("a", &sink, LinkModel::perfect()).is_ok());
  EXPECT_FALSE(network.attach("a", &sink, LinkModel::perfect()).is_ok());
  EXPECT_FALSE(network.attach("b", nullptr, LinkModel::perfect()).is_ok());
}

TEST_F(NetFixture, NoRouteCountsDrop) {
  Message msg;
  msg.dst = "ghost";
  network.send(msg);
  loop.run_all();
  EXPECT_EQ(network.stats().dropped_no_route, 1u);
  EXPECT_EQ(network.stats().delivered, 0u);
}

TEST_F(NetFixture, DetachStopsDelivery) {
  Recorder sink;
  ASSERT_TRUE(network.attach("sink", &sink, LinkModel::perfect()).is_ok());
  ASSERT_TRUE(network.detach("sink").is_ok());
  EXPECT_FALSE(network.detach("sink").is_ok());  // double detach fails
  Message msg;
  msg.dst = "sink";
  network.send(msg);
  loop.run_all();
  EXPECT_TRUE(sink.received.empty());
}

TEST_F(NetFixture, DetachWhileInFlightDropsAtDelivery) {
  Recorder sink;
  LinkModel slow = LinkModel::perfect();
  slow.latency_mean_s = 0.5;
  ASSERT_TRUE(network.attach("sink", &sink, slow).is_ok());
  Message msg;
  msg.dst = "sink";
  network.send(msg);
  ASSERT_TRUE(network.detach("sink").is_ok());  // leaves mid-flight
  loop.run_all();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(network.stats().dropped_no_route, 1u);
}

TEST_F(NetFixture, LossyLinkDropsSomeMessages) {
  Recorder sink;
  LinkModel lossy = LinkModel::perfect();
  lossy.loss_prob = 0.5;
  ASSERT_TRUE(network.attach("sink", &sink, lossy).is_ok());
  for (int i = 0; i < 200; ++i) {
    Message msg;
    msg.dst = "sink";
    network.send(msg);
  }
  loop.run_all();
  EXPECT_GT(sink.received.size(), 50u);
  EXPECT_LT(sink.received.size(), 150u);
  EXPECT_EQ(network.stats().dropped_loss + sink.received.size(), 200u);
}

TEST_F(NetFixture, PartitionBlocksAndHealRestores) {
  Recorder sink;
  ASSERT_TRUE(network.attach("sink", &sink, LinkModel::perfect()).is_ok());
  network.partition("sink");
  EXPECT_TRUE(network.is_partitioned("sink"));
  Message msg;
  msg.dst = "sink";
  network.send(msg);
  loop.run_all();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(network.stats().dropped_partition, 1u);

  network.heal("sink");
  network.send(msg);
  loop.run_all();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(NetFixture, BandwidthAddsSerializationDelay) {
  Recorder sink;
  LinkModel thin = LinkModel::perfect();
  thin.bandwidth_bytes_per_s = 1000.0;
  ASSERT_TRUE(network.attach("sink", &sink, thin).is_ok());
  Message big;
  big.dst = "sink";
  big.payload_bytes = 5000;  // 5 seconds at 1 kB/s
  network.send(big);
  loop.run_all();
  EXPECT_NEAR(clock.now().to_seconds(), 5.0, 1e-6);
}

TEST_F(NetFixture, LatencyDistributionMatchesLinkModel) {
  Recorder sink;
  LinkModel link = LinkModel::perfect();
  link.latency_mean_s = 0.020;
  link.latency_jitter_s = 0.005;
  ASSERT_TRUE(network.attach("sink", &sink, link).is_ok());

  // Send one message at a time and measure per-message delay.
  double total_s = 0.0;
  const int kMessages = 300;
  for (int i = 0; i < kMessages; ++i) {
    util::TimePoint before = clock.now();
    Message msg;
    msg.dst = "sink";
    msg.payload_bytes = 0;
    network.send(msg);
    loop.run_all();
    total_s += (clock.now() - before).to_seconds();
  }
  double mean = total_s / kMessages;
  EXPECT_NEAR(mean, 0.020, 0.002);  // sampled mean tracks the model
}

TEST_F(NetFixture, SetLinkReplacesModel) {
  Recorder sink;
  ASSERT_TRUE(network.attach("sink", &sink, LinkModel::perfect()).is_ok());
  LinkModel lossy = LinkModel::perfect();
  lossy.loss_prob = 1.0;
  ASSERT_TRUE(network.set_link("sink", lossy).is_ok());
  EXPECT_FALSE(network.set_link("ghost", lossy).is_ok());
  Message msg;
  msg.dst = "sink";
  network.send(msg);
  loop.run_all();
  EXPECT_TRUE(sink.received.empty());
}

TEST(MessageTest, TypedFieldHelpers) {
  Message msg;
  msg.set("s", "text").set_double("d", 2.5).set_int("i", -7);
  EXPECT_EQ(msg.field("s"), "text");
  EXPECT_EQ(msg.field("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(msg.field_double("d"), 2.5);
  EXPECT_EQ(msg.field_int("i"), -7);
  EXPECT_DOUBLE_EQ(msg.field_double("s", -1.0), -1.0);
  EXPECT_EQ(msg.field_int("absent", 9), 9);
}

// ---------------------------------------------------------------- RPC

struct RpcFixture : public NetFixture {
  RpcFixture() : client_node(&network), echo(&network, &loop) {
    (void)network.attach("client", &client_node, LinkModel::perfect());
    (void)network.attach("echo", &echo, LinkModel::perfect());
  }

  struct ClientNode : public Endpoint {
    explicit ClientNode(Network* network) : rpc(network, "client") {}
    void on_message(const Message& msg) override { rpc.on_reply(msg); }
    RpcClient rpc;
  };

  ClientNode client_node;
  Echo echo;
};

TEST_F(RpcFixture, RoundTripDeliversReply) {
  bool called = false;
  client_node.rpc.call("echo", "ping", {{"k", "v"}}, Duration::seconds(1),
                       [&](util::Result<Message> reply) {
                         called = true;
                         ASSERT_TRUE(reply.is_ok());
                         EXPECT_EQ(reply.value().kind, "echo_ack");
                       });
  loop.run_all();
  EXPECT_TRUE(called);
  EXPECT_EQ(client_node.rpc.completed(), 1u);
  EXPECT_EQ(client_node.rpc.timeouts(), 0u);
}

TEST_F(RpcFixture, TimesOutWhenNoReply) {
  network.partition("echo");
  bool called = false;
  client_node.rpc.call("echo", "ping", {}, Duration::millis(100),
                       [&](util::Result<Message> reply) {
                         called = true;
                         EXPECT_FALSE(reply.is_ok());
                         EXPECT_EQ(reply.status().code(),
                                   util::StatusCode::kTimeout);
                       });
  loop.run_all();
  EXPECT_TRUE(called);
  EXPECT_EQ(client_node.rpc.timeouts(), 1u);
  EXPECT_NEAR(clock.now().to_seconds(), 0.1, 1e-6);
}

TEST_F(RpcFixture, LateReplyAfterTimeoutIsIgnored) {
  // The echo replies after 200 ms but the client gives up at 50 ms.
  Echo slow_echo(&network, &loop, Duration::millis(200));
  (void)network.attach("slow", &slow_echo, LinkModel::perfect());
  int calls = 0;
  client_node.rpc.call("slow", "ping", {}, Duration::millis(50),
                       [&](util::Result<Message> reply) {
                         ++calls;
                         EXPECT_FALSE(reply.is_ok());
                       });
  loop.run_all();
  EXPECT_EQ(calls, 1);  // exactly once, despite the late reply arriving
  // The late reply is accounted, not silently dropped.
  EXPECT_EQ(client_node.rpc.stats().late_replies, 1u);
  EXPECT_EQ(client_node.rpc.stats().timeouts, 1u);
}

TEST_F(RpcFixture, LateReplyIsConsumedNotMisroutedAsPush) {
  Echo slow_echo(&network, &loop, Duration::millis(200));
  (void)network.attach("slow", &slow_echo, LinkModel::perfect());
  client_node.rpc.call("slow", "ping", {}, Duration::millis(50),
                       [](util::Result<Message>) {});
  // Run past the timeout but stop before the late reply arrives, then
  // deliver it by hand: on_reply must claim it (returns true) so the
  // endpoint doesn't forward a stale rpc reply to its push handler.
  loop.run_for(Duration::millis(100));
  Message late = make_reply(Message{}, "echo_ack");
  late.dst = "client";
  late.request_id = 1;  // first id the client allocated
  EXPECT_TRUE(client_node.rpc.on_reply(late));
  EXPECT_EQ(client_node.rpc.stats().late_replies, 1u);
}

TEST_F(RpcFixture, EndpointStatsTrackQueueDepthAndSlowPeers) {
  Echo slow_echo(&network, &loop, Duration::millis(200));
  (void)network.attach("slow", &slow_echo, LinkModel::perfect());
  client_node.rpc.set_slow_threshold(Duration::millis(100));

  // Two overlapping calls to the slow peer plus one to the fast echo.
  client_node.rpc.call("slow", "ping", {}, Duration::seconds(5),
                       [](util::Result<Message>) {});
  client_node.rpc.call("slow", "ping", {}, Duration::seconds(5),
                       [](util::Result<Message>) {});
  client_node.rpc.call("echo", "ping", {}, Duration::seconds(5),
                       [](util::Result<Message>) {});
  const auto& stats = client_node.rpc.endpoint_stats();
  EXPECT_EQ(stats.at("slow").calls, 2u);
  EXPECT_EQ(stats.at("slow").in_flight, 2u);  // queue depth while pending

  loop.run_all();
  EXPECT_EQ(stats.at("slow").in_flight, 0u);
  EXPECT_EQ(stats.at("slow").max_in_flight, 2u);  // high-water mark sticks
  EXPECT_EQ(stats.at("slow").slow_replies, 2u);   // 200 ms > 100 ms bound
  EXPECT_EQ(stats.at("slow").timeouts, 0u);
  EXPECT_EQ(stats.at("echo").calls, 1u);
  EXPECT_EQ(stats.at("echo").slow_replies, 0u);
  EXPECT_EQ(client_node.rpc.stats().slow_replies, 2u);

  // A timeout settles the endpoint entry too: depth drains, miss counted.
  network.partition("slow");
  client_node.rpc.call("slow", "ping", {}, Duration::millis(50),
                       [](util::Result<Message>) {});
  EXPECT_EQ(stats.at("slow").in_flight, 1u);
  loop.run_all();
  EXPECT_EQ(stats.at("slow").in_flight, 0u);
  EXPECT_EQ(stats.at("slow").timeouts, 1u);
}

// An endpoint that can refuse delivery, standing in for an offline device.
class Refusing : public Endpoint {
 public:
  void on_message(const Message& msg) override { received.push_back(msg); }
  bool accepting() const override { return accepting_; }
  std::vector<Message> received;
  bool accepting_ = true;
};

TEST_F(RpcFixture, OfflineEndpointBouncesRequestBeforeTimeout) {
  Refusing dev;
  LinkModel slow = LinkModel::perfect();
  slow.latency_mean_s = 0.050;
  (void)network.attach("dev", &dev, slow);
  bool called = false;
  client_node.rpc.call("dev", "read_attr", {}, Duration::seconds(5),
                       [&](util::Result<Message> reply) {
                         called = true;
                         EXPECT_FALSE(reply.is_ok());
                         EXPECT_EQ(reply.status().code(),
                                   util::StatusCode::kUnavailable);
                       });
  // The device drops offline while the request is in flight.
  dev.accepting_ = false;
  loop.run_all();
  EXPECT_TRUE(called);
  EXPECT_TRUE(dev.received.empty());
  // Fail-fast: the bounce beats the 5 s timeout by a wide margin.
  EXPECT_LT(clock.now().to_seconds(), 0.5);
  EXPECT_EQ(network.stats().dropped_offline, 1u);
  EXPECT_EQ(network.stats().bounced, 1u);
  EXPECT_EQ(client_node.rpc.stats().unreachable, 1u);
  EXPECT_EQ(client_node.rpc.stats().timeouts, 0u);
}

TEST_F(NetFixture, NonRequestMessagesAreNeverBounced) {
  // One-way pushes carry no request_id contract: an offline receiver just
  // drops them, it must not synthesize unreachable notices.
  Recorder src;
  Refusing dev;
  dev.accepting_ = false;
  (void)network.attach("src", &src, LinkModel::perfect());
  (void)network.attach("dev", &dev, LinkModel::perfect());
  Message push;
  push.src = "src";
  push.dst = "dev";
  push.kind = "push";
  network.send(push);
  loop.run_all();
  EXPECT_EQ(network.stats().dropped_offline, 1u);
  EXPECT_EQ(network.stats().bounced, 0u);
  EXPECT_TRUE(src.received.empty());
}

TEST_F(RpcFixture, ConcurrentCallsDemultiplexCorrectly) {
  int answered = 0;
  for (int i = 0; i < 10; ++i) {
    client_node.rpc.call("echo", "ping", {{"n", std::to_string(i)}},
                         Duration::seconds(1),
                         [&](util::Result<Message> reply) {
                           ASSERT_TRUE(reply.is_ok());
                           ++answered;
                         });
  }
  loop.run_all();
  EXPECT_EQ(answered, 10);
}

TEST_F(RpcFixture, UnsolicitedMessageIsNotConsumedAsReply) {
  Message stray;
  stray.dst = "client";
  stray.kind = "push";
  stray.request_id = 0;
  EXPECT_FALSE(client_node.rpc.on_reply(stray));
  stray.request_id = 424242;  // unknown id
  EXPECT_FALSE(client_node.rpc.on_reply(stray));
}

}  // namespace
}  // namespace aorta::net
