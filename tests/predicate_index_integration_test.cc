// Engine-level predicate-index tests: the index is an *optimization*, so
// a full simulated run with Config::predicate_index on must produce the
// same per-AQ event stream as the exhaustive evaluator — including
// glitchy devices, edge-triggered phase assignment, mixed periods, AQs
// dropped mid-run, residual-only predicates and contradictions. Also
// pins the register/drop churn invariants (satellite: a 1k-cycle churn
// storm leaves no index debris and does not perturb surviving AQs).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/aorta.h"
#include "devices/signal.h"
#include "util/time.h"

namespace aorta {
namespace {

using util::Duration;

// events / requests / epochs per AQ — everything QueryStats exposes.
using AqStats = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

AqStats stats_of(const core::Aorta& sys, const std::string& name) {
  const query::QueryStats* qs = sys.query_stats(name);
  if (qs == nullptr) return {0, 0, 0};
  return {qs->events, qs->requests_issued, qs->epochs};
}

// One deterministic scenario, parameterized only by the index switch.
// Four motes with staggered spike signals (default glitch probability
// kept, so read failures and degraded tuples occur), seven AQs covering
// every index entry kind, a drop mid-run, and a non-default period.
std::map<std::string, AqStats> run_scenario(bool indexed) {
  core::Config cfg;
  cfg.seed = 1309;
  cfg.predicate_index = indexed;
  core::Aorta sys(cfg);
  for (int i = 0; i < 4; ++i) {
    std::string id = "m" + std::to_string(i);
    EXPECT_TRUE(sys.add_mote(id, {static_cast<double>(3 * i), 0, 1}).is_ok());
    (void)sys.mote(id)->set_signal(
        "accel_x", devices::periodic_spike_signal(
                       50.0, 300.0 * (i + 1), Duration::seconds(8),
                       Duration::seconds(2), Duration::seconds(i)));
    (void)sys.mote(id)->set_signal(
        "accel_y", devices::sine_signal(400.0, 350.0, 10.0,
                                        0.7 * static_cast<double>(i)));
  }

  const char* aqs[] = {
      // exact-cover lower bound (the paper's flagship predicate shape)
      "CREATE AQ lower AS SELECT s.id, s.accel_x FROM sensor s "
      "WHERE s.accel_x > 500",
      // two-sided range, half-open
      "CREATE AQ band AS SELECT s.id FROM sensor s "
      "WHERE s.accel_x >= 400 AND s.accel_x < 800",
      // contradictory conjuncts: kNever, must fire nothing
      "CREATE AQ never AS SELECT s.id FROM sensor s "
      "WHERE s.accel_x > 5000 AND s.accel_x < 10",
      // string equality + numeric residual on another slot
      "CREATE AQ strid AS SELECT s.accel_x FROM sensor s "
      "WHERE s.id = 'm1' AND s.accel_x > 200",
      // opaque arithmetic: stays on the residual list
      "CREATE AQ resid AS SELECT s.id FROM sensor s "
      "WHERE (s.accel_x + s.accel_y) > 900",
      // non-default period: separate delivery group
      "CREATE AQ slow EVERY 2 AS SELECT s.id FROM sensor s "
      "WHERE s.accel_x >= 500",
      // dropped mid-run below
      "CREATE AQ victim AS SELECT s.id FROM sensor s "
      "WHERE s.accel_x > 250",
  };
  for (const char* sql : aqs) {
    auto r = sys.exec(sql);
    EXPECT_TRUE(r.is_ok()) << sql << ": " << r.status().to_string();
  }

  sys.run_for(Duration::seconds(11));
  std::map<std::string, AqStats> out;
  out["victim"] = stats_of(sys, "victim");  // capture before the drop
  EXPECT_TRUE(sys.exec("DROP AQ victim").is_ok());
  sys.run_for(Duration::seconds(11));

  for (const char* name : {"lower", "band", "never", "strid", "resid",
                           "slow"}) {
    out[name] = stats_of(sys, name);
  }
  // The scenario is only meaningful if things actually fire.
  EXPECT_GT(std::get<0>(out["lower"]), 0u);
  EXPECT_GT(std::get<0>(out["band"]), 0u);
  EXPECT_GT(std::get<0>(out["resid"]), 0u);
  EXPECT_GT(std::get<0>(out["victim"]), 0u);
  EXPECT_EQ(std::get<0>(out["never"]), 0u);
  return out;
}

TEST(PredicateIndexIntegrationTest, IndexedRunMatchesExhaustiveRun) {
  std::map<std::string, AqStats> off = run_scenario(/*indexed=*/false);
  std::map<std::string, AqStats> on = run_scenario(/*indexed=*/true);
  ASSERT_EQ(on.size(), off.size());
  for (const auto& [name, expected] : off) {
    EXPECT_EQ(on.at(name), expected) << name;
  }
}

// ------------------------------------------------------------------ churn

// 1000 register/drop cycles around one long-lived AQ: index bookkeeping
// must return exactly to the keeper-only baseline, and the keeper's event
// stream must be identical to a churn-free control run over the same
// simulated schedule.
struct ChurnRun {
  explicit ChurnRun(bool churn) {
    core::Config cfg;
    cfg.seed = 5;
    sys = std::make_unique<core::Aorta>(cfg);
    for (int i = 0; i < 3; ++i) {
      std::string id = "m" + std::to_string(i);
      (void)sys->add_mote(id, {static_cast<double>(2 * i), 0, 1});
      (void)sys->mote(id)->set_signal(
          "accel_x", devices::periodic_spike_signal(
                         0.0, 900.0, Duration::seconds(6),
                         Duration::seconds(2), Duration::seconds(i)));
    }
    EXPECT_TRUE(sys->exec("CREATE AQ keeper AS SELECT s.id, s.accel_x "
                          "FROM sensor s WHERE s.accel_x > 500")
                    .is_ok());
    int cycle = 0;
    for (int step = 0; step < 20; ++step) {
      if (churn) {
        // 50 register+drop cycles per step, 1000 total. Predicates are
        // varied so the cycles hit every entry kind: same-shape entries
        // that join the keeper's group, other-slot entries, residuals,
        // contradictions, and string equality.
        for (int k = 0; k < 50; ++k, ++cycle) {
          std::string name = "churn" + std::to_string(cycle);
          std::string where;
          switch (cycle % 5) {
            case 0: where = "s.accel_x > " + std::to_string(cycle); break;
            case 1: where = "s.accel_x >= 100 AND s.accel_x < " +
                            std::to_string(200 + cycle); break;
            case 2: where = "s.id = 'm" + std::to_string(cycle % 3) + "'";
                    break;
            case 3: where = "(s.accel_x + s.accel_y) > 100"; break;
            default: where = "s.accel_x > 10 AND s.accel_x < 5"; break;
          }
          EXPECT_TRUE(sys->exec("CREATE AQ " + name +
                                " AS SELECT s.id, s.accel_x FROM sensor s "
                                "WHERE " + where)
                          .is_ok())
              << where;
          EXPECT_TRUE(sys->exec("DROP AQ " + name).is_ok());
        }
      }
      sys->run_for(Duration::seconds(1));
    }
  }
  std::unique_ptr<core::Aorta> sys;
};

TEST(PredicateIndexIntegrationTest, ThousandCycleChurnLeavesNoDebris) {
  ChurnRun churn(/*churn=*/true);
  // Only the keeper remains: one group, one index entry, nothing on the
  // residual list, no leaked per-type gauge weight.
  const obs::MetricsRegistry& m = churn.sys->metrics();
  EXPECT_EQ(m.gauge_value("eval.index.entries"), 1);
  EXPECT_EQ(m.gauge_value("eval.index.groups"), 1);
  EXPECT_EQ(m.gauge_value("eval.index.types.sensor.entries"), 1);

  ChurnRun control(/*churn=*/false);
  EXPECT_EQ(stats_of(*churn.sys, "keeper"), stats_of(*control.sys, "keeper"));
  EXPECT_GT(std::get<0>(stats_of(*churn.sys, "keeper")), 0u);
}

}  // namespace
}  // namespace aorta
