// Shared-aggregate cache bench (query/agg_cache.h, DESIGN.md §15).
//
// The dashboard workload: N tenants each register a continuous windowed
// aggregate over one 12-mote sensor table, but the tenants only use 10
// distinct query shapes (everybody watches the same building rollups).
// Sweeps N from 1 to 1000 and runs every point twice: with the
// query-hash shared-aggregate cache (Config::aggregate_cache = true) and
// with the private-per-AQ ablation (= false, identical accumulation
// machinery, no sharing). Reports, per point and mode:
//
//   * per-tuple aggregate evaluations (eval.agg.tuples_evaluated) — the
//     CPU bill the cache collapses,
//   * live cache entries / subscribers and the hit/miss/subsumption split,
//   * emitted window rows, and whether the two modes' delivered rows are
//     byte-identical per tenant (they must be: sharing is transparent).
//
// Acceptance: at 1000 tenants the cache evaluates >= 5x fewer tuples than
// the ablation (it lands near 100x: 1000 subscribers collapse onto 9
// entries) while every tenant receives byte-identical rows. Violations
// exit non-zero.
//
// Everything runs in simulated time on the deterministic event loop;
// writes results/bench_agg_cache.json. `--threads K` steps the per-shard
// loops with K OS threads (the CI soak knob) — determinism means it can
// change nothing but wall-clock.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <variant>
#include <vector>

#include "core/aorta.h"
#include "util/json_writer.h"

namespace {

using aorta::util::Duration;

constexpr int kMotes = 12;
constexpr double kSimSeconds = 30.0;

// The 10 distinct shapes behind the tenant fleet. Shapes 0 and 1 share a
// canonical hash (GROUP BY is excluded from it): shape 1 attaches to
// shape 0's entry as a subsumed grouping, so 10 shapes cost 9 entries.
const char* kShapes[] = {
    "SELECT avg(s.temp) FROM sensor s GROUP BY s.hops WINDOW 4s EVERY 2s",
    "SELECT avg(s.temp) FROM sensor s WINDOW 4s EVERY 2s",
    "SELECT count(*), max(s.light) FROM sensor s GROUP BY s.hops "
    "WINDOW 6s EVERY 3s",
    "SELECT min(s.temp), max(s.temp) FROM sensor s GROUP BY s.hops WINDOW 8s",
    "SELECT sum(s.light) FROM sensor s WINDOW 5s",
    "SELECT avg(s.accel_x) FROM sensor s WHERE s.accel_x > 100 WINDOW 3s",
    "SELECT sum(s.temp), count(*) FROM sensor s GROUP BY s.hops "
    "WINDOW 10s EVERY 5s",
    "SELECT count(s.temp) FROM sensor s WHERE s.temp > 18 WINDOW 4s",
    "SELECT max(s.accel_x) FROM sensor s GROUP BY s.hops WINDOW 6s EVERY 2s",
    "SELECT avg(s.light), count(*) FROM sensor s WINDOW 2s",
};
constexpr int kShapeCount = 10;

std::string value_key(const aorta::device::Value& v) {
  char buf[96];
  if (std::holds_alternative<std::monostate>(v)) return "null";
  if (const bool* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  const auto& loc = std::get<aorta::device::Location>(v);
  std::snprintf(buf, sizeof(buf), "(%.17g,%.17g,%.17g)", loc.x, loc.y, loc.z);
  return buf;
}

struct ModeResult {
  aorta::query::AggStats stats;
  std::size_t entries = 0;
  std::size_t subscribers = 0;
  // Per-tenant delivered rows, rendered byte-exactly: the cross-mode
  // identity check.
  std::vector<std::string> rows_per_tenant;
};

ModeResult run_mode(int tenants, bool cache, int threads,
                    const char* trace_path = nullptr) {
  aorta::core::Config cfg;
  cfg.seed = 42;
  cfg.aggregate_cache = cache;
  cfg.runtime_threads = threads;
  cfg.tracing = trace_path != nullptr;
  aorta::core::Aorta sys(cfg);
  (void)sys.network().set_link(aorta::comm::EngineNode::kNodeId,
                               aorta::net::LinkModel::perfect());
  for (int i = 0; i < kMotes; ++i) {
    std::string id = "mote" + std::to_string(i);
    (void)sys.add_mote(id, {static_cast<double>(i * 3), 0, 1}, 1 + i % 3);
    sys.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.network().set_link(id, aorta::net::LinkModel::perfect());
    (void)sys.mote(id)->set_signal(
        "temp", aorta::devices::constant_signal(15.0 + i));
    (void)sys.mote(id)->set_signal(
        "light", aorta::devices::constant_signal(80.0 + 10.0 * (i % 4)));
    (void)sys.mote(id)->set_signal(
        "accel_x",
        aorta::devices::periodic_spike_signal(
            0.0, 900.0, Duration::seconds(10.0), Duration::seconds(2.0),
            Duration::seconds(static_cast<double>(i % 5))));
  }

  for (int t = 0; t < tenants; ++t) {
    std::string name = "tenant" + std::to_string(t);
    auto r = sys.exec("CREATE AQ " + name + " AS " +
                      kShapes[t % kShapeCount]);
    if (!r.is_ok()) {
      std::fprintf(stderr, "CREATE AQ failed: %s\n",
                   r.status().to_string().c_str());
      std::exit(2);
    }
  }
  sys.run_for(Duration::seconds(kSimSeconds));
  if (trace_path != nullptr) {
    auto st = sys.tracer().export_file(trace_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.to_string().c_str());
    }
  }

  ModeResult m;
  m.stats = sys.executor().agg_stats();
  m.entries = sys.executor().agg_entries();
  m.subscribers = sys.executor().agg_subscribers();
  for (int t = 0; t < tenants; ++t) {
    std::string key;
    for (const aorta::query::TimestampedRow& r :
         sys.executor().recent_results("tenant" + std::to_string(t))) {
      key += std::to_string(r.at.to_micros());
      for (const auto& [name, value] : r.row) {
        key += "|" + name + "=" + value_key(value);
      }
      key += r.degraded ? "|degraded;" : ";";
    }
    m.rows_per_tenant.push_back(std::move(key));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }

  std::printf("Shared-aggregate cache: per-tuple aggregate evaluations, "
              "%d motes, %d query shapes, %g simulated seconds per point, "
              "%d runtime thread(s)\n",
              kMotes, kShapeCount, kSimSeconds, threads);
  std::printf("\n%8s %14s %14s %9s %9s %9s %8s\n", "tenants", "evals:priv",
              "evals:cache", "saving", "entries", "emitted", "rows");

  std::error_code ec;
  std::filesystem::create_directories("results", ec);

  const std::vector<int> sweep = {1, 10, 100, 1000};
  aorta::util::JsonWriter w(2);
  w.begin_object();
  w.kv("motes", kMotes);
  w.kv("shapes", kShapeCount);
  w.kv("sim_seconds", kSimSeconds);
  w.kv("threads", threads);
  w.key("sweep").begin_array();
  bool rows_identical = true;
  double reduction_at_1000 = 0.0;
  ModeResult at_1000;

  for (int tenants : sweep) {
    ModeResult priv = run_mode(tenants, /*cache=*/false, threads);
    // The flagship 1000-tenant cached run also exports its span trace:
    // the artifact CI schema-validates and Perfetto loads.
    ModeResult cached = run_mode(
        tenants, /*cache=*/true, threads,
        tenants == 1000 ? "results/bench_agg_cache_trace.json" : nullptr);

    bool same = priv.rows_per_tenant == cached.rows_per_tenant;
    if (!same) rows_identical = false;
    double saving =
        cached.stats.tuples_evaluated == 0
            ? 0.0
            : static_cast<double>(priv.stats.tuples_evaluated) /
                  static_cast<double>(cached.stats.tuples_evaluated);
    if (tenants == 1000) {
      reduction_at_1000 = saving;
      at_1000 = cached;
    }

    std::printf("%8d %14llu %14llu %8.1fx %9zu %9llu %8zu%s\n", tenants,
                static_cast<unsigned long long>(priv.stats.tuples_evaluated),
                static_cast<unsigned long long>(cached.stats.tuples_evaluated),
                saving, cached.entries,
                static_cast<unsigned long long>(cached.stats.emissions),
                cached.rows_per_tenant.size(),
                same ? "" : "  ROWS-DIVERGED");

    w.begin_object();
    w.kv("tenants", tenants);
    w.key("private").begin_object();
    w.kv("tuples_evaluated", priv.stats.tuples_evaluated);
    w.kv("emissions", priv.stats.emissions);
    w.kv("entries", static_cast<std::uint64_t>(priv.entries));
    w.end_object();
    w.key("cached").begin_object();
    w.kv("tuples_evaluated", cached.stats.tuples_evaluated);
    w.kv("emissions", cached.stats.emissions);
    w.kv("panes_closed", cached.stats.panes_closed);
    w.kv("entries", static_cast<std::uint64_t>(cached.entries));
    w.kv("subscribers", static_cast<std::uint64_t>(cached.subscribers));
    w.kv("hits", cached.stats.hits);
    w.kv("misses", cached.stats.misses);
    w.kv("subsumptions", cached.stats.subsumptions);
    w.end_object();
    w.kv("eval_saving", saving);
    w.kv("rows_identical", same);
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.kv("reduction_at_1000", reduction_at_1000);
  w.kv("rows_identical", rows_identical);
  w.kv("entries_at_1000", static_cast<std::uint64_t>(at_1000.entries));
  w.kv("subscribers_at_1000", static_cast<std::uint64_t>(at_1000.subscribers));
  w.kv("hits_at_1000", at_1000.stats.hits);
  w.kv("misses_at_1000", at_1000.stats.misses);
  w.kv("subsumptions_at_1000", at_1000.stats.subsumptions);
  w.end_object();
  w.end_object();

  std::ofstream out("results/bench_agg_cache.json");
  out << w.str() << '\n';
  std::printf("\nwrote results/bench_agg_cache.json\n");

  int rc = 0;
  if (reduction_at_1000 < 5.0) {
    std::printf("WARNING: evaluation reduction at 1000 tenants is %.1fx, "
                "below the 5x target\n", reduction_at_1000);
    rc = 1;
  }
  if (!rows_identical) {
    std::printf("WARNING: delivered rows diverged between cached and "
                "private aggregation\n");
    rc = 1;
  }
  return rc;
}
