// Ablation: scheduler choice inside the *full* Aorta stack.
//
// Figures 4-6 evaluate the algorithms on isolated scheduling rounds; this
// bench closes the loop by running the complete pipeline — continuous
// queries, event detection, shared operators, probing, locks, simulated
// cameras — and varying only Config::scheduler. The metric is the actual
// (simulated wall clock) makespan of each event burst's photo batch plus
// end-to-end outcome quality.
#include <cstdio>

#include "core/aorta.h"
#include "util/strings.h"

using namespace aorta;

namespace {

struct SystemOutcome {
  double mean_batch_makespan_s = 0.0;
  std::uint64_t usable = 0;
  std::uint64_t bad = 0;
};

SystemOutcome run_system(const std::string& scheduler, std::uint64_t seed) {
  core::Config config;
  config.seed = seed;
  config.scheduler = scheduler;
  core::Aorta sys(config);

  // A bigger lab than Section 6.1: 6 cameras in a ring, 12 motes, all
  // spiking together every minute -> bursts of 12 concurrent requests.
  for (int c = 0; c < 6; ++c) {
    double angle = c * 60.0;
    double x = 10.0 + 8.0 * std::cos(angle * M_PI / 180.0);
    double y = 10.0 + 8.0 * std::sin(angle * M_PI / 180.0);
    (void)sys.add_camera(util::str_format("cam%d", c + 1),
                         util::str_format("10.0.0.%d", c + 1),
                         {{x, y, 3.0}, angle + 180.0}, 30.0);
  }
  for (int m = 0; m < 12; ++m) {
    std::string id = util::str_format("mote%d", m + 1);
    double x = 10.0 + 5.0 * std::cos(m * 30.0 * M_PI / 180.0);
    double y = 10.0 + 5.0 * std::sin(m * 30.0 * M_PI / 180.0);
    (void)sys.add_mote(id, {x, y, 1.0});
    (void)sys.mote(id)->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 900.0, util::Duration::seconds(60),
                                       util::Duration::seconds(2),
                                       util::Duration::seconds(7)));
  }
  for (int q = 1; q <= 12; ++q) {
    (void)sys.exec(util::str_format(
        "CREATE AQ q%d AS SELECT photo(c.ip, s.loc, 'd') FROM sensor s, "
        "camera c WHERE s.id = 'mote%d' AND s.accel_x > 500 AND "
        "coverage(c.id, s.loc)",
        q, q));
  }

  sys.run_for(util::Duration::minutes(10));

  SystemOutcome out;
  for (const auto* op : sys.executor().operators()) {
    out.mean_batch_makespan_s = op->stats().actual_makespan_s.mean();
  }
  for (int q = 1; q <= 12; ++q) {
    auto as = sys.action_stats("q" + std::to_string(q));
    out.usable += as.usable;
    out.bad += as.total_bad();
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "\n================================================================\n"
      "Ablation - scheduler choice in the full system\n"
      "12 queries bursting together each minute, 6 cameras, 10 sim-min,\n"
      "metric = mean actual makespan per photo batch (simulated seconds)\n"
      "================================================================\n");
  std::printf("%12s %20s %10s %10s %12s\n", "scheduler", "batch makespan (s)",
              "usable", "bad", "fail rate");

  for (const char* scheduler :
       {"LERFA+SRFE", "SRFAE", "LS", "SA", "RANDOM"}) {
    double makespan = 0.0;
    std::uint64_t usable = 0, bad = 0;
    const int kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      SystemOutcome out = run_system(scheduler, seed);
      makespan += out.mean_batch_makespan_s;
      usable += out.usable;
      bad += out.bad;
    }
    double completed = static_cast<double>(usable + bad);
    std::printf("%12s %20.2f %10llu %10llu %11.1f%%\n", scheduler,
                makespan / kSeeds, static_cast<unsigned long long>(usable),
                static_cast<unsigned long long>(bad),
                completed == 0 ? 0.0 : 100.0 * bad / completed);
  }
  std::printf("\nexpectation: the Figure 4 ordering survives contact with the\n"
              "full pipeline — ours < SA? < LS < RANDOM on batch makespan —\n"
              "and failure rates stay low for all (locks + probing active).\n");
  return 0;
}
