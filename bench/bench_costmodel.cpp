// Section 2.3 (prose): "Our results from a number of experiments have
// validated that our cost model is reasonably accurate."
//
// This bench validates the reproduction's cost model the same way: it
// schedules photo workloads with SRFAE using the profile-based estimates,
// then executes the schedule against the *simulated physical cameras*
// through the communication layer (locks held, network latency included)
// and compares the estimated per-request cost with the observed service
// time. The residual error is the network round-trip and contention the
// estimate deliberately ignores.
#include <cstdio>
#include <memory>

#include "comm/comm_module.h"
#include "devices/camera.h"
#include "sched/algorithms.h"
#include "sched/executor.h"
#include "sched/workload.h"
#include "sync/lock_manager.h"
#include "util/stats.h"

using namespace aorta;

int main() {
  std::printf(
      "\n================================================================\n"
      "Section 2.3 - Cost model validation: estimated vs observed photo()\n"
      "cost on simulated AXIS 2130 cameras (locks held, network included)\n"
      "================================================================\n");
  std::printf("%6s %10s %12s %12s %12s %12s\n", "run", "requests",
              "est mean(s)", "obs mean(s)", "mean |err|", "rel err");

  util::Summary all_rel_errors;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::SimClock clock;
    util::EventLoop loop(&clock);
    net::Network network(&loop, util::Rng(seed));
    device::DeviceRegistry registry(&network, &loop, util::Rng(seed + 1000));
    (void)registry.register_type(devices::camera_type_info());
    comm::CommLayer comm(&registry, &network);
    sync::LockManager locks(&loop);

    // Ten cameras with seeded random initial head positions matching the
    // scheduling workload generator's device view.
    sched::WorkloadSpec spec;
    spec.n_requests = 20;
    spec.n_devices = 10;
    spec.seed = seed;
    sched::Workload w = sched::make_photo_workload(spec);
    for (const auto& dev : w.devices) {
      auto camera = std::make_unique<devices::PtzCamera>(
          dev.id, "10.0.0." + dev.id, devices::CameraPose{{0, 0, 3}, 0.0});
      camera->set_head(devices::PtzPosition{dev.status.at("pan"),
                                            dev.status.at("tilt"),
                                            dev.status.at("zoom")});
      camera->reliability().glitch_prob = 0.0;  // isolate timing accuracy
      camera->set_fatigue_coeff(0.0);
      (void)registry.add(std::move(camera));
    }

    auto model = sched::PhotoCostModel::axis2130();
    auto scheduler = sched::make_scheduler("SRFAE");
    util::Rng rng(seed + 2000);
    sched::ScheduleResult schedule =
        scheduler->schedule(w.requests, w.devices, *model, rng);

    sched::ScheduleExecutor executor(&locks, &loop,
                                     sched::make_photo_execute_fn(&comm));
    sched::ExecutionReport report;
    bool finished = false;
    executor.execute(schedule, w.requests, [&](sched::ExecutionReport r) {
      report = std::move(r);
      finished = true;
    });
    loop.run_for(util::Duration::minutes(5));
    if (!finished) {
      std::printf("%6llu   execution did not finish!\n",
                  static_cast<unsigned long long>(seed));
      continue;
    }

    util::Summary est, obs, abs_err, rel_err;
    std::size_t excluded_failures = 0;
    for (const auto& item : schedule.items) {
      auto it = report.actual_cost_s.find(item.request_id);
      if (it == report.actual_cost_s.end()) continue;
      // Only successful actions validate the *cost* model; a lost request
      // measures the timeout, not the action (reported separately).
      auto outcome = report.outcomes.find(item.request_id);
      if (outcome == report.outcomes.end() || !outcome->second.ok) {
        ++excluded_failures;
        continue;
      }
      double estimated = item.finish_s - item.start_s;
      double observed = it->second;
      est.add(estimated);
      obs.add(observed);
      abs_err.add(std::abs(observed - estimated));
      if (estimated > 0) {
        rel_err.add(std::abs(observed - estimated) / estimated);
        all_rel_errors.add(std::abs(observed - estimated) / estimated);
      }
    }
    std::printf("%6llu %10zu %12.3f %12.3f %12.3f %11.1f%%",
                static_cast<unsigned long long>(seed), est.count(), est.mean(),
                obs.mean(), abs_err.mean(), 100.0 * rel_err.mean());
    if (excluded_failures > 0) {
      std::printf("   (%zu lost to network, excluded)", excluded_failures);
    }
    std::printf("\n");
  }

  std::printf("\noverall mean relative error: %.1f%% "
              "(paper: 'reasonably accurate')\n",
              100.0 * all_rel_errors.mean());
  return 0;
}
