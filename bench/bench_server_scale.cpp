// Multi-tenant service scalability bench (src/server).
//
// Part 1 — session-count sweep: N simulated closed-loop clients (10 ->
// 10,000) across 10 tenants submit one-shot SELECTs and a few CREATE AQs
// against one Aorta instance. Reports dispatch throughput, admission
// latency percentiles, shed rate, and per-tenant fairness (max/min
// completed statements) per point.
//
// Part 2 — hot-tenant isolation: an open-loop workload where tenant t0
// submits at 10x everyone else's rate, run three ways: uniform baseline,
// hot tenant under weighted-fair dequeue + quotas, and hot tenant under
// plain FIFO dequeue. The acceptance bar is that with fairness on, the
// hot tenant degrades the other tenants' goodput by < 20% vs baseline.
//
// Everything runs in simulated time on the deterministic event loop, so
// results are identical across machines. Writes
// results/bench_server_scale.json next to the CSV outputs of the other
// benches.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/aorta.h"
#include "server/service.h"
#include "server/workload_gen.h"
#include "util/json_writer.h"
#include "util/stats.h"

namespace {

using aorta::util::Duration;

constexpr int kTenants = 10;
constexpr double kSweepSimSeconds = 30.0;
constexpr double kHotSimSeconds = 60.0;

// A small instrumented building: enough motes that scans are real work,
// few enough that a 10k-session sweep stays fast.
void build_world(aorta::core::Aorta& sys) {
  for (int i = 0; i < 4; ++i) {
    std::string id = "mote" + std::to_string(i);
    (void)sys.add_mote(id, {static_cast<double>(i * 3), 0, 1}, 1 + i % 2);
    // Acceleration spikes past the AQ threshold every 10 s.
    (void)sys.mote(id)->set_signal(
        "accel_x",
        aorta::devices::periodic_spike_signal(
            0.0, 900.0, Duration::seconds(10.0), Duration::seconds(1.0),
            Duration::seconds(static_cast<double>(i))));
    (void)sys.mote(id)->set_signal("temp",
                                   aorta::devices::constant_signal(22.0));
  }
}

struct RunResult {
  aorta::server::AdmissionStats admission;
  aorta::util::Summary latency_ms;
  std::map<aorta::server::TenantId, std::uint64_t> completed_by_tenant;
  std::uint64_t completed_total = 0;
  std::uint64_t mailbox_dropped = 0;
  std::size_t sessions = 0;
  aorta::comm::BrokerTypeStats broker;  // shared-scan-plane totals
};

RunResult run_workload(const aorta::server::ServiceConfig& service_config,
                       const aorta::server::WorkloadConfig& workload_config,
                       double sim_seconds) {
  aorta::core::Config cfg;
  // Shared acquisition plane with a short freshness window: concurrent
  // SELECTs from many sessions ride the same sensory sweeps.
  cfg.scan_freshness = Duration::millis(250);
  aorta::core::Aorta sys(cfg);
  build_world(sys);
  aorta::server::QueryService service(&sys, service_config);
  aorta::server::WorkloadGen gen(&service, &sys, workload_config);
  gen.start();
  sys.run_for(Duration::seconds(sim_seconds));
  gen.stop();

  RunResult r;
  r.admission = service.admission().stats();
  r.latency_ms = service.admission_latency_ms();
  r.sessions = service.active_sessions();
  for (const auto& [tenant, ts] : service.tenant_stats()) {
    r.completed_by_tenant[tenant] = ts.completed;
    r.completed_total += ts.completed;
  }
  for (aorta::server::SessionId id : gen.sessions()) {
    if (const aorta::server::Session* s = service.session(id)) {
      r.mailbox_dropped += s->mailbox_dropped();
    }
  }
  r.broker = sys.scan_broker().totals();
  return r;
}

double fairness_ratio(const RunResult& r) {
  std::uint64_t lo = 0, hi = 0;
  bool first = true;
  for (const auto& [tenant, completed] : r.completed_by_tenant) {
    if (first) {
      lo = hi = completed;
      first = false;
    } else {
      lo = std::min(lo, completed);
      hi = std::max(hi, completed);
    }
  }
  return lo == 0 ? 0.0 : static_cast<double>(hi) / static_cast<double>(lo);
}

// Mean completed statements of every tenant except t0 (the hot one).
double others_goodput_per_s(const RunResult& r, double sim_seconds) {
  double sum = 0.0;
  int n = 0;
  for (const auto& [tenant, completed] : r.completed_by_tenant) {
    if (tenant == "t0") continue;
    sum += static_cast<double>(completed);
    ++n;
  }
  return n == 0 ? 0.0 : sum / n / sim_seconds;
}

}  // namespace

int main() {
  std::printf("Multi-tenant query service scalability "
              "(simulated time, deterministic)\n");

  // ---- Part 1: session sweep ----------------------------------------------
  std::printf("\n%8s %10s %12s %10s %10s %10s %10s\n", "sessions",
              "completed", "thruput/s", "p50_ms", "p99_ms", "shed%", "fair");
  aorta::util::JsonWriter w(2);
  w.begin_object();
  w.key("sweep").begin_array();
  const std::vector<int> sweep = {10, 100, 1000, 10000};
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    int sessions = sweep[i];
    aorta::server::ServiceConfig sc;
    sc.admission.queue_capacity = 1024;
    sc.admission.policy = aorta::util::OverflowPolicy::kShedOldest;
    sc.admission.fair_dequeue = true;

    aorta::server::WorkloadConfig wc;
    wc.tenants = kTenants;
    wc.sessions_per_tenant = sessions / kTenants;
    wc.mode = aorta::server::WorkloadConfig::Mode::kClosedLoop;
    wc.think = Duration::seconds(1.0);
    wc.seed = 1000 + static_cast<std::uint64_t>(sessions);

    RunResult r = run_workload(sc, wc, kSweepSimSeconds);
    double thruput = static_cast<double>(r.completed_total) / kSweepSimSeconds;
    double p50 = r.latency_ms.empty() ? 0.0 : r.latency_ms.percentile(50.0);
    double p99 = r.latency_ms.empty() ? 0.0 : r.latency_ms.percentile(99.0);
    double shed_pct =
        r.admission.submitted == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.admission.shed) /
                  static_cast<double>(r.admission.submitted);
    double fair = fairness_ratio(r);
    std::printf("%8d %10llu %12.1f %10.3f %10.3f %10.2f %10.2f\n", sessions,
                static_cast<unsigned long long>(r.completed_total), thruput,
                p50, p99, shed_pct, fair);
    w.begin_object();
    w.kv("sessions", sessions);
    w.kv("active_sessions", static_cast<std::uint64_t>(r.sessions));
    w.kv("completed", r.completed_total);
    w.kv("throughput_per_s", thruput);
    w.key("admission_latency_ms").begin_object();
    w.kv("p50", p50);
    w.kv("p99", p99);
    w.end_object();
    w.kv("shed", r.admission.shed);
    w.kv("shed_pct", shed_pct);
    w.kv("mailbox_dropped", r.mailbox_dropped);
    w.kv("fairness_max_min", fair);
    w.key("scan_broker").begin_object();
    w.kv("rpcs_issued", r.broker.rpcs_issued);
    w.kv("rpcs_coalesced", r.broker.rpcs_coalesced);
    w.kv("cache_hits", r.broker.cache_hits);
    w.kv("tuples_delivered", r.broker.tuples_delivered);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  // ---- Part 2: hot-tenant isolation ---------------------------------------
  // Open loop, 10 sessions per tenant at 1 Hz each; service capacity is
  // capped well below the hot run's offered load so admission control has
  // to arbitrate.
  auto hot_service = [](bool fair) {
    aorta::server::ServiceConfig sc;
    sc.admission.queue_capacity = 512;
    sc.admission.policy = aorta::util::OverflowPolicy::kShedOldest;
    sc.admission.fair_dequeue = fair;
    sc.max_dispatch_per_tick = 16;  // 160 dispatches/s ceiling
    return sc;
  };
  auto hot_workload = [](double t0_multiplier) {
    aorta::server::WorkloadConfig wc;
    wc.tenants = kTenants;
    wc.sessions_per_tenant = 10;
    wc.mode = aorta::server::WorkloadConfig::Mode::kOpenLoop;
    wc.arrival_rate_hz = 1.0;
    wc.aq_fraction = 0.0;  // pure SELECT load so goodput is comparable
    wc.seed = 77;
    if (t0_multiplier != 1.0) wc.rate_multipliers["t0"] = t0_multiplier;
    return wc;
  };

  RunResult base = run_workload(hot_service(true), hot_workload(1.0),
                                kHotSimSeconds);
  RunResult hot_fair = run_workload(hot_service(true), hot_workload(10.0),
                                    kHotSimSeconds);
  RunResult hot_fifo = run_workload(hot_service(false), hot_workload(10.0),
                                    kHotSimSeconds);

  double g_base = others_goodput_per_s(base, kHotSimSeconds);
  double g_fair = others_goodput_per_s(hot_fair, kHotSimSeconds);
  double g_fifo = others_goodput_per_s(hot_fifo, kHotSimSeconds);
  double degradation_fair =
      g_base == 0.0 ? 0.0 : 100.0 * (g_base - g_fair) / g_base;
  double degradation_fifo =
      g_base == 0.0 ? 0.0 : 100.0 * (g_base - g_fifo) / g_base;

  std::printf("\nHot tenant (t0 at 10x, 100 open-loop sessions, "
              "capacity 160/s):\n");
  std::printf("  %-34s %8.2f stmts/s/tenant\n",
              "others' goodput, uniform baseline", g_base);
  std::printf("  %-34s %8.2f (%.1f%% degradation)\n",
              "others' goodput, fair dequeue", g_fair, degradation_fair);
  std::printf("  %-34s %8.2f (%.1f%% degradation)\n",
              "others' goodput, FIFO dequeue", g_fifo, degradation_fifo);
  std::printf("  hot tenant completed: baseline=%llu fair=%llu fifo=%llu\n",
              static_cast<unsigned long long>(
                  base.completed_by_tenant.count("t0")
                      ? base.completed_by_tenant.at("t0") : 0),
              static_cast<unsigned long long>(
                  hot_fair.completed_by_tenant.count("t0")
                      ? hot_fair.completed_by_tenant.at("t0") : 0),
              static_cast<unsigned long long>(
                  hot_fifo.completed_by_tenant.count("t0")
                      ? hot_fifo.completed_by_tenant.at("t0") : 0));

  w.key("hot_tenant").begin_object();
  w.kv("others_goodput_per_s_baseline", g_base);
  w.kv("others_goodput_per_s_fair", g_fair);
  w.kv("others_goodput_per_s_fifo", g_fifo);
  w.kv("degradation_pct_fair", degradation_fair);
  w.kv("degradation_pct_fifo", degradation_fifo);
  w.end_object();
  w.end_object();

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream out("results/bench_server_scale.json");
  out << w.str() << '\n';
  std::printf("\nwrote results/bench_server_scale.json\n");

  if (degradation_fair >= 20.0) {
    std::printf("WARNING: fair-dequeue degradation %.1f%% exceeds the 20%% "
                "isolation target\n", degradation_fair);
    return 1;
  }
  return 0;
}
