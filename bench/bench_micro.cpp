// Micro-benchmarks (google-benchmark): scheduling-time scaling of the five
// algorithms, declarative-interface parsing, XML profile parsing, the
// simulated network's message throughput, and event-loop overhead. These
// are ablation/engineering numbers, not paper figures.
#include <benchmark/benchmark.h>

#include "net/rpc.h"
#include "query/parser.h"
#include "sched/algorithms.h"
#include "sched/cost_model.h"
#include "sched/workload.h"
#include "util/xml.h"

using namespace aorta;

namespace {

void BM_Scheduler(benchmark::State& state, const char* name) {
  auto model = sched::PhotoCostModel::axis2130();
  auto scheduler = sched::make_scheduler(name);
  sched::WorkloadSpec spec;
  spec.n_requests = static_cast<int>(state.range(0));
  spec.n_devices = 10;
  spec.seed = 7;
  sched::Workload w = sched::make_photo_workload(spec);
  util::Rng rng(11);
  for (auto _ : state) {
    auto result = scheduler->schedule(w.requests, w.devices, *model, rng);
    benchmark::DoNotOptimize(result.service_makespan_s);
  }
}

void BM_ParseSnapshotQuery(benchmark::State& state) {
  const std::string sql =
      "CREATE AQ snapshot AS SELECT photo(c.ip, s.loc, 'photos/admin') "
      "FROM sensor s, camera c WHERE s.accel_x > 500 AND coverage(c.id, s.loc)";
  for (auto _ : state) {
    auto stmt = query::parse(sql);
    benchmark::DoNotOptimize(stmt.is_ok());
  }
}

void BM_ParseActionProfileXml(benchmark::State& state) {
  const std::string xml =
      "<action_profile action=\"photo\" device_type=\"camera\" "
      "status_attrs=\"pan,tilt,zoom\">"
      "<seq><par><op name=\"pan\"/><op name=\"tilt\"/><op name=\"zoom\"/></par>"
      "<op name=\"snap_medium\"/></seq></action_profile>";
  for (auto _ : state) {
    auto profile = device::ActionProfile::from_xml(xml);
    benchmark::DoNotOptimize(profile.is_ok());
  }
}

// One request/reply round trip through the simulated network.
class EchoEndpoint : public net::Endpoint {
 public:
  explicit EchoEndpoint(net::Network* network) : network_(network) {}
  void on_message(const net::Message& msg) override {
    network_->send(net::make_reply(msg, "echo_ack"));
  }

 private:
  net::Network* network_;
};

void BM_NetworkRoundTrip(benchmark::State& state) {
  util::SimClock clock;
  util::EventLoop loop(&clock);
  net::Network network(&loop, util::Rng(3));
  EchoEndpoint echo(&network);
  (void)network.attach("echo", &echo, net::LinkModel::perfect());

  class Client : public net::Endpoint {
   public:
    explicit Client(net::Network* network) : rpc_(network, "client") {}
    void on_message(const net::Message& msg) override { rpc_.on_reply(msg); }
    net::RpcClient rpc_;
  } client(&network);
  (void)network.attach("client", &client, net::LinkModel::perfect());

  for (auto _ : state) {
    bool done = false;
    client.rpc_.call("echo", "echo", {}, util::Duration::seconds(1),
                     [&done](util::Result<net::Message>) { done = true; });
    loop.run_all();
    benchmark::DoNotOptimize(done);
  }
}

void BM_EventLoopScheduleRun(benchmark::State& state) {
  util::SimClock clock;
  util::EventLoop loop(&clock);
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      loop.schedule(util::Duration::micros(i), []() {});
    }
    loop.run_all();
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Scheduler, lerfa_srfe, "LERFA+SRFE")->Arg(10)->Arg(20)->Arg(40);
BENCHMARK_CAPTURE(BM_Scheduler, srfae, "SRFAE")->Arg(10)->Arg(20)->Arg(40);
BENCHMARK_CAPTURE(BM_Scheduler, ls, "LS")->Arg(10)->Arg(20)->Arg(40);
BENCHMARK_CAPTURE(BM_Scheduler, random, "RANDOM")->Arg(10)->Arg(20)->Arg(40);
BENCHMARK_CAPTURE(BM_Scheduler, sa, "SA")->Arg(10)->Arg(20);
BENCHMARK(BM_ParseSnapshotQuery);
BENCHMARK(BM_ParseActionProfileXml);
BENCHMARK(BM_NetworkRoundTrip);
BENCHMARK(BM_EventLoopScheduleRun);

BENCHMARK_MAIN();
