// Ablation: group optimization of action requests (Section 2.3's shared
// action operators) vs servicing each request the moment it arrives.
//
// "Such action operator sharing saves system resources and facilitates
// group optimization of actions." This bench quantifies the claim at the
// scheduling layer: the same request stream is either (a) batched and
// scheduled as one round by each algorithm, or (b) assigned one at a time
// in arrival order, each to the device minimizing its own completion time
// (the natural no-batching policy). Group optimization can reorder
// requests per device to exploit sequence-dependent costs; the
// one-at-a-time policy cannot.
#include "bench/bench_common.h"
#include "sched/cost_model.h"

using namespace aorta;
using namespace aorta::benchx;

namespace {

// One-at-a-time arrival-order assignment: cheapest completion device per
// request, FIFO per device. No reordering, no lookahead.
double immediate_dispatch_makespan(const sched::Workload& w,
                                   const sched::CostModel& model) {
  std::vector<double> frontier(w.devices.size(), 0.0);
  std::vector<sched::DeviceStatus> status;
  status.reserve(w.devices.size());
  for (const auto& d : w.devices) status.push_back(d.status);
  std::map<device::DeviceId, std::size_t> index;
  for (std::size_t j = 0; j < w.devices.size(); ++j) index[w.devices[j].id] = j;

  double makespan = 0.0;
  for (const auto& r : w.requests) {
    std::size_t best_j = 0;
    double best_finish = 0.0;
    bool first = true;
    for (const auto& cand : r.candidates) {
      std::size_t j = index.at(cand);
      double finish = frontier[j] + model.cost_s(r, status[j]);
      if (first || finish < best_finish) {
        first = false;
        best_finish = finish;
        best_j = j;
      }
    }
    frontier[best_j] = best_finish;
    model.apply(r, &status[best_j]);
    makespan = std::max(makespan, best_finish);
  }
  return makespan;
}

}  // namespace

int main() {
  auto model = sched::PhotoCostModel::axis2130();

  print_header(
      "Ablation - group optimization (batched scheduling) vs immediate\n"
      "per-request dispatch, service makespan seconds (avg of 10 runs)");
  std::printf("%10s %14s %14s %14s %18s\n", "#requests", "LERFA+SRFE",
              "SRFAE", "SA", "immediate (none)");

  for (int n : {10, 20, 30, 60}) {
    std::printf("%10d", n);
    for (const char* algorithm : {"LERFA+SRFE", "SRFAE", "SA"}) {
      sched::WorkloadSpec spec;
      spec.n_requests = n;
      spec.n_devices = 10;
      Cell cell = run_cell(algorithm, spec, *model);
      std::printf(" %14.2f", cell.service_s.mean());
    }
    aorta::util::Summary immediate;
    for (int run = 0; run < kRunsPerPoint; ++run) {
      sched::WorkloadSpec spec;
      spec.n_requests = n;
      spec.n_devices = 10;
      spec.seed = 100 + static_cast<std::uint64_t>(run);
      sched::Workload w = sched::make_photo_workload(spec);
      immediate.add(immediate_dispatch_makespan(w, *model));
    }
    std::printf(" %18.2f\n", immediate.mean());
  }

  std::printf("\nfinding: immediate cheapest-completion dispatch is a strong\n"
              "heuristic at small batches, but it cannot reorder: as batches\n"
              "grow, SRFAE's global re-keying pulls ahead (~20%% at n=60).\n"
              "The shared operator's other benefit — one probe round per\n"
              "batch instead of per request — is measured in\n"
              "bench_ablation_probing.\n");
  return 0;
}
