// Chaos bench: what device health supervision buys under a scripted
// crash/revive fault plan.
//
// Four motes feed one level-triggered monitoring AQ (one row per device
// per epoch). A FaultPlan crashes mote m1 for a 60 s window in the middle
// of a 120 s run. The same scenario runs twice: supervision on (quarantine
// with backoff probes + degraded last-known-good serving) and off (the
// pre-supervision baseline that re-reads the corpse every epoch).
// Reports, per mode:
//
//   * availability: rows delivered / achievable rows, where achievable
//     excludes the crashed device's crash-window epochs,
//   * degraded rows served (last-known-good, tagged) and their max
//     staleness,
//   * wasted RPCs on the dead device (failed reads + quarantine probes),
//   * recovery latency after the revive (backoff probe -> fresh rows).
//
// Acceptance (exit non-zero on violation):
//   * supervision on spends >= 5x fewer RPCs on the dead device,
//   * supervision on delivers >= 95% of achievable rows,
//   * every row delivered for the crashed device inside the crash window
//     carries the degradation marker (and healthy devices never do),
//   * two supervision-on runs are byte-identical (same seed, same plan).
//
// Everything runs in simulated time on the deterministic event loop;
// writes results/bench_chaos.json.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/aorta.h"
#include "shard/plane.h"
#include "util/fault_plan.h"
#include "util/json_writer.h"

namespace {

using aorta::util::Duration;

constexpr int kMotes = 4;
constexpr double kSimSeconds = 120.0;
constexpr double kCrashAt = 20.5;   // mid-epoch, so sweeps see it next tick
constexpr double kReviveAt = 80.5;
const char* kCrashedMote = "m1";

const char* kPlanXml =
    "<fault_plan>"
    "<event at=\"20.5\" kind=\"crash\" device=\"m1\"/>"
    "<event at=\"80.5\" kind=\"revive\" device=\"m1\"/>"
    "</fault_plan>";

struct RowRecord {
  std::int64_t at_us = 0;
  std::string device;
  bool degraded = false;
};

struct ModeResult {
  std::uint64_t delivered = 0;          // rows across all devices
  std::uint64_t degraded_rows = 0;      // rows carrying the marker
  std::uint64_t wasted_rpcs = 0;        // failed reads + quarantine probes
  std::uint64_t quarantines = 0;
  std::uint64_t recoveries = 0;
  double max_staleness_s = 0.0;         // oldest LKG value served
  double recovery_s = -1.0;             // revive -> first fresh row
  bool marker_ok = true;
  std::string row_log;                  // serialized rows (determinism)
};

// `trace_path`, when set, records the run's span trace (including the
// quarantine/recovery health transitions) and exports it as a Chrome
// trace next to the results JSON.
ModeResult run_mode(bool supervision, const char* trace_path = nullptr) {
  aorta::core::Config cfg;
  cfg.seed = 42;
  cfg.health_supervision = supervision;
  cfg.tracing = trace_path != nullptr;
  // Cover the whole crash window with last-known-good serving.
  cfg.degraded_staleness = Duration::seconds(90.0);
  aorta::core::Aorta sys(cfg);
  // Clean links on both ends: the only failures in this scenario are the
  // scripted crash, so every failed RPC is chargeable to the fault plan.
  (void)sys.network().set_link(aorta::comm::EngineNode::kNodeId,
                               aorta::net::LinkModel::perfect());
  for (int i = 0; i < kMotes; ++i) {
    std::string id = "m" + std::to_string(i);
    (void)sys.add_mote(id, {static_cast<double>(i * 2), 0, 1});
    sys.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.network().set_link(id, aorta::net::LinkModel::perfect());
    (void)sys.mote(id)->set_signal(
        "temp", aorta::devices::constant_signal(20.0 + i));
  }

  std::vector<RowRecord> rows;
  aorta::core::ExecOptions opt;
  opt.on_row = [&rows](const std::string&,
                       const aorta::query::TimestampedRow& r) {
    const std::string* id =
        r.row.empty() ? nullptr : std::get_if<std::string>(&r.row[0].second);
    rows.push_back(RowRecord{r.at.to_micros(), id != nullptr ? *id : "?",
                             r.degraded});
  };
  bool registered = false;
  sys.exec_async("CREATE AQ mon AS SELECT s.id, s.temp FROM sensor s",
                 std::move(opt),
                 [&](aorta::util::Result<aorta::core::ExecResult> r) {
                   registered = r.is_ok();
                 });
  if (!registered) {
    std::fprintf(stderr, "CREATE AQ failed\n");
    std::exit(2);
  }

  auto plan = aorta::util::FaultPlan::from_xml(kPlanXml);
  if (!plan.is_ok() || !sys.apply_fault_plan(plan.value()).is_ok()) {
    std::fprintf(stderr, "fault plan rejected\n");
    std::exit(2);
  }
  sys.run_for(Duration::seconds(kSimSeconds));
  if (trace_path != nullptr) {
    auto st = sys.tracer().export_file(trace_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.to_string().c_str());
    }
  }

  ModeResult m;
  m.delivered = rows.size();
  double first_fresh_after_revive = -1.0;
  for (const RowRecord& r : rows) {
    double at_s = static_cast<double>(r.at_us) / 1e6;
    if (r.degraded) {
      ++m.degraded_rows;
      if (r.device != kCrashedMote) m.marker_ok = false;  // healthy tagged
      double staleness = at_s - kCrashAt;
      if (staleness > m.max_staleness_s) m.max_staleness_s = staleness;
    } else if (r.device == kCrashedMote && at_s > kCrashAt &&
               at_s <= kReviveAt) {
      // A fresh row inside the crash window can only mean an untagged
      // delivery for a dead (quarantined) device.
      m.marker_ok = false;
    }
    if (r.device == kCrashedMote && !r.degraded && at_s > kReviveAt &&
        first_fresh_after_revive < 0.0) {
      first_fresh_after_revive = at_s;
    }
    m.row_log += std::to_string(r.at_us) + "|" + r.device + "|" +
                 (r.degraded ? "d" : "f") + "\n";
  }
  if (first_fresh_after_revive >= 0.0) {
    m.recovery_s = first_fresh_after_revive - kReviveAt;
  }

  // Every RPC aimed at the dead device failed (links are otherwise
  // perfect): failed sweep reads, plus the supervisor's backoff probes.
  m.wasted_rpcs = sys.scan_broker().totals().read_failures;
  if (const aorta::core::HealthSupervisor* health = sys.health()) {
    m.wasted_rpcs += health->stats().probes_sent;
    m.quarantines = health->stats().quarantines;
    m.recoveries = health->stats().recoveries;
  }
  return m;
}

// ---- sharded section -------------------------------------------------------
//
// The same scenario class against the 2-shard czar/worker plane, with a
// worker kill layered on top: mote m1 (shard 1) crashes for 60 s, and
// worker shard-0 (owning m0/m2) falls off the network for a 20 s window
// inside that. Asserts the surviving shard's rows keep draining once the
// czar marks shard-0 down, the czar re-registers the fragment on heal,
// and m1's degraded (last-known-good) markers survive the fragment wire
// format end-to-end.

constexpr double kShardKillAt = 40.5;
constexpr double kShardHealAt = 60.5;

const char* kShardedPlanXml =
    "<fault_plan>"
    "<event at=\"20.5\" kind=\"crash\" device=\"m1\"/>"
    "<event at=\"80.5\" kind=\"revive\" device=\"m1\"/>"
    "<event at=\"40.5\" kind=\"partition\" shard=\"0\"/>"
    "<event at=\"60.5\" kind=\"heal\" shard=\"0\"/>"
    "</fault_plan>";

struct ShardedResult {
  std::uint64_t delivered = 0;
  std::uint64_t degraded_rows = 0;
  std::uint64_t rows_during_kill = 0;  // surviving shard, kill window
  std::uint64_t rows_after_heal = 0;   // killed shard's motes, post-heal
  std::uint64_t reregistrations = 0;
  std::uint64_t quarantines = 0;
  bool marker_ok = true;
  std::string row_log;
};

ShardedResult run_sharded() {
  aorta::core::Config cfg;
  cfg.seed = 42;
  cfg.health_supervision = true;
  cfg.degraded_staleness = Duration::seconds(90.0);
  aorta::core::Aorta sys(cfg);
  aorta::shard::Plane::Options po;
  po.num_shards = 2;
  aorta::shard::Plane plane(&sys, po);
  for (int i = 0; i < kMotes; ++i) {
    std::string id = "m" + std::to_string(i);
    (void)plane.add_mote(id, {static_cast<double>(i * 2), 0, 1});
    plane.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.network().set_link(id, aorta::net::LinkModel::perfect());
    (void)plane.mote(id)->set_signal(
        "temp", aorta::devices::constant_signal(20.0 + i));
  }
  const int killed_shard = 0;
  const int surviving_shard = 1;

  std::vector<RowRecord> rows;
  aorta::core::ExecOptions opt;
  opt.on_row = [&rows](const std::string&,
                       const aorta::query::TimestampedRow& r) {
    const std::string* id =
        r.row.empty() ? nullptr : std::get_if<std::string>(&r.row[0].second);
    rows.push_back(RowRecord{r.at.to_micros(), id != nullptr ? *id : "?",
                             r.degraded});
  };
  bool registered = false;
  plane.exec_async("CREATE AQ mon AS SELECT s.id, s.temp FROM sensor s",
                   std::move(opt),
                   [&](aorta::util::Result<aorta::core::ExecResult> r) {
                     registered = r.is_ok();
                   });
  auto plan = aorta::util::FaultPlan::from_xml(kShardedPlanXml);
  if (!plan.is_ok() || !plane.apply_fault_plan(plan.value()).is_ok()) {
    std::fprintf(stderr, "sharded fault plan rejected\n");
    std::exit(2);
  }
  sys.run_for(Duration::seconds(kSimSeconds));
  if (!registered) {
    std::fprintf(stderr, "sharded CREATE AQ failed\n");
    std::exit(2);
  }

  ShardedResult m;
  m.delivered = rows.size();
  for (const RowRecord& r : rows) {
    double at_s = static_cast<double>(r.at_us) / 1e6;
    // Degraded markers may come from m1 (its quarantine) or from the
    // killed shard's own devices after the partition begins: the
    // partition drops the worker's scan RPCs too, so its supervisor
    // quarantines m0/m2 and serves last-known-good rows until a
    // re-probe succeeds shortly after heal.
    bool killed_shard_quarantine =
        plane.shard_of_device(r.device) == killed_shard &&
        at_s > kShardKillAt;
    if (r.degraded) {
      ++m.degraded_rows;
      if (r.device != kCrashedMote && !killed_shard_quarantine) {
        m.marker_ok = false;
      }
    } else if (r.device == kCrashedMote && at_s > kCrashAt &&
               at_s <= kReviveAt) {
      m.marker_ok = false;
    }
    if (plane.shard_of_device(r.device) == surviving_shard &&
        at_s > kShardKillAt + 5.0 && at_s <= kShardHealAt) {
      ++m.rows_during_kill;  // +5 s: past the heartbeat-miss threshold
    }
    if (plane.shard_of_device(r.device) == killed_shard &&
        at_s > kShardHealAt + 5.0) {
      ++m.rows_after_heal;
    }
    m.row_log += std::to_string(r.at_us) + "|" + r.device + "|" +
                 (r.degraded ? "d" : "f") + "\n";
  }
  m.reregistrations = plane.czar().stats().reregistrations;
  m.quarantines = sys.metrics().counter_value(
      "shard." + std::to_string(plane.shard_of_device(kCrashedMote)) +
      ".health.quarantines");
  return m;
}

// ---- backplane storm section -----------------------------------------------
//
// The reliable backplane (DESIGN.md §14) under a sustained czar-link storm:
// 10% chaos loss, 1.5x duplication, 30% reordering (4 ms window) and a
// 2 ms fixed delay on every czar<->worker traversal for 45 of 60 simulated
// seconds. The chaos draws come from the isolated constant-seeded stream,
// so the storm run and the clean run of the same seed produce identical
// worker-side rows — any difference in what the client sees is the
// backplane protocol's fault. Gates:
//
//   * the storm run's delivered rows (up to a convergence cutoff) are
//     byte-identical to the clean run's: zero lost, zero duplicated,
//     unchanged order;
//   * the machinery demonstrably engaged (duplicates dropped, gaps NACKed
//     and replayed, chaos drops counted) and the replay buffer stayed
//     bounded;
//   * an AQ registered mid-storm still lands (ReliableCall retries);
//   * the ablation arm (Config::reliable_backplane = false) visibly loses
//     rows — the fail-fast path this PR replaced.

constexpr double kStormSimSeconds = 60.0;
// Rows produced after this instant are excluded from the identity gate:
// the storm ends at t=50 and both runs' merge frontiers have provably
// converged again a heartbeat or two later.
constexpr double kStormCutoffS = 55.0;

const char* kStormPlanXml =
    "<fault_plan>"
    "<event at=\"5\" kind=\"loss\" device=\"czar\" prob=\"0.1\" for=\"45\"/>"
    "<event at=\"5\" kind=\"duplicate\" device=\"czar\" factor=\"1.5\""
    " for=\"45\"/>"
    "<event at=\"5\" kind=\"reorder\" device=\"czar\" prob=\"0.3\""
    " window=\"0.004\" for=\"45\"/>"
    "<event at=\"5\" kind=\"delay\" device=\"czar\" add=\"0.002\""
    " for=\"45\"/>"
    "</fault_plan>";

struct StormResult {
  std::uint64_t delivered = 0;         // released rows, whole run
  std::uint64_t cutoff_delivered = 0;  // released rows with at <= cutoff
  std::string row_log;                 // rows with at <= cutoff (identity)
  std::uint64_t late_rows = 0;         // rows of the mid-storm AQ
  std::uint64_t dup_msgs_dropped = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t replay_sent = 0;
  std::uint64_t replay_hwm = 0;
  std::uint64_t replay_depth_end = 0;
  std::uint64_t dropped_chaos = 0;
  std::uint64_t chaos_dup_copies = 0;
  std::uint64_t retries = 0;
  std::uint64_t giveups = 0;
};

StormResult run_storm(bool storm, bool reliable, bool midstorm_aq) {
  aorta::core::Config cfg;
  cfg.seed = 42;
  cfg.reliable_backplane = reliable;
  aorta::core::Aorta sys(cfg);
  aorta::shard::Plane::Options po;
  po.num_shards = 2;
  aorta::shard::Plane plane(&sys, po);
  for (int i = 0; i < 8; ++i) {
    std::string id = "m" + std::to_string(i);
    (void)plane.add_mote(id, {static_cast<double>(i * 2), 0, 1});
    plane.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.network().set_link(id, aorta::net::LinkModel::perfect());
    (void)plane.mote(id)->set_signal(
        "temp", aorta::devices::constant_signal(20.0 + i));
  }

  StormResult m;
  std::vector<RowRecord> rows;
  aorta::core::ExecOptions opt;
  opt.on_row = [&rows](const std::string&,
                       const aorta::query::TimestampedRow& r) {
    const std::string* id =
        r.row.empty() ? nullptr : std::get_if<std::string>(&r.row[0].second);
    rows.push_back(RowRecord{r.at.to_micros(), id != nullptr ? *id : "?",
                             r.degraded});
  };
  bool registered = false;
  plane.exec_async("CREATE AQ mon AS SELECT s.id, s.temp FROM sensor s",
                   std::move(opt),
                   [&](aorta::util::Result<aorta::core::ExecResult> r) {
                     registered = r.is_ok();
                   });
  if (midstorm_aq) {
    // Registered from inside the storm window: the fragment RPCs must be
    // retried through the chaos loss to ever produce a row. Several
    // registrations spread across the window so at least one round trip
    // meets a chaos drop. Kept out of the identity scenario — a
    // registration instant (and thus its first epoch) legitimately
    // depends on how many retries it took.
    for (double at_s : {20.0, 26.0, 32.0, 38.0}) {
      sys.loop().schedule(Duration::seconds(at_s), [&plane, &m, at_s]() {
        aorta::core::ExecOptions late;
        late.on_row = [&m](const std::string&,
                           const aorta::query::TimestampedRow&) {
          ++m.late_rows;
        };
        plane.exec_async(
            "CREATE AQ late" + std::to_string(static_cast<int>(at_s)) +
                " AS SELECT s.temp FROM sensor s WHERE s.temp > 21",
            std::move(late),
            [](aorta::util::Result<aorta::core::ExecResult>) {});
      });
    }
  }
  if (storm) {
    auto plan = aorta::util::FaultPlan::from_xml(kStormPlanXml);
    if (!plan.is_ok() || !plane.apply_fault_plan(plan.value()).is_ok()) {
      std::fprintf(stderr, "storm fault plan rejected\n");
      std::exit(2);
    }
  }
  sys.run_for(Duration::seconds(kStormSimSeconds));
  if (!registered) {
    std::fprintf(stderr, "storm CREATE AQ failed\n");
    std::exit(2);
  }

  m.delivered = rows.size();
  const std::int64_t cutoff_us = static_cast<std::int64_t>(kStormCutoffS * 1e6);
  for (const RowRecord& r : rows) {
    if (r.at_us > cutoff_us) continue;
    ++m.cutoff_delivered;
    m.row_log += std::to_string(r.at_us) + "|" + r.device + "|" +
                 (r.degraded ? "d" : "f") + "\n";
  }
  const aorta::shard::CzarStats& cs = plane.czar().stats();
  m.dup_msgs_dropped = cs.dup_msgs_dropped;
  m.nacks_sent = cs.nacks_sent;
  m.acks_sent = cs.acks_sent;
  const aorta::net::ReliableCallStats& rs = plane.czar().reliable_stats();
  m.retries = rs.retries;
  m.giveups = rs.giveups;
  for (int i = 0; i < po.num_shards; ++i) {
    const aorta::shard::WorkerStats& ws = plane.worker(i).stats();
    m.replay_sent += ws.replay_sent;
    if (ws.replay_hwm > m.replay_hwm) m.replay_hwm = ws.replay_hwm;
    m.replay_depth_end += plane.worker(i).replay_depth();
  }
  // Czar-link chaos lands on the control segment: outbound acks/NACKs at
  // send, inbound worker streams at delivery (their dst traversal).
  m.dropped_chaos = sys.network().stats().dropped_chaos;
  m.chaos_dup_copies = sys.network().stats().chaos_dup_copies;
  return m;
}

void mode_json(aorta::util::JsonWriter& w, const ModeResult& m,
               double availability) {
  w.begin_object();
  w.kv("delivered", m.delivered);
  w.kv("availability", availability);
  w.kv("degraded_rows", m.degraded_rows);
  w.kv("max_staleness_s", m.max_staleness_s);
  w.kv("wasted_rpcs", m.wasted_rpcs);
  w.kv("quarantines", m.quarantines);
  w.kv("recoveries", m.recoveries);
  w.kv("recovery_s", m.recovery_s);
  w.kv("marker_ok", m.marker_ok);
  w.end_object();
}

}  // namespace

int main() {
  std::printf("Chaos bench: %d motes, %g simulated seconds, %s crashed "
              "t=[%g, %g)\n\n",
              kMotes, kSimSeconds, kCrashedMote, kCrashAt, kReviveAt);

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  // The supervised run doubles as the trace-artifact source (health
  // transition instants show the quarantine window in Perfetto).
  ModeResult on =
      run_mode(/*supervision=*/true, "results/bench_chaos_trace.json");
  ModeResult off = run_mode(/*supervision=*/false);
  ModeResult on_again = run_mode(/*supervision=*/true);
  bool deterministic =
      on.row_log == on_again.row_log && on.wasted_rpcs == on_again.wasted_rpcs;

  // Achievable excludes the crashed device's crash-window epochs; degraded
  // serving claws some of those epochs back, which can push availability
  // past 1.0 by design.
  const double epochs = kSimSeconds;
  const double crash_epochs = kReviveAt - kCrashAt;
  const double achievable = kMotes * epochs - crash_epochs;
  double avail_on = static_cast<double>(on.delivered) / achievable;
  double avail_off = static_cast<double>(off.delivered) / achievable;
  double rpc_ratio = on.wasted_rpcs == 0
                         ? static_cast<double>(off.wasted_rpcs)
                         : static_cast<double>(off.wasted_rpcs) /
                               static_cast<double>(on.wasted_rpcs);

  std::printf("%-28s %12s %12s\n", "", "super:on", "super:off");
  std::printf("%-28s %12llu %12llu\n", "rows delivered",
              static_cast<unsigned long long>(on.delivered),
              static_cast<unsigned long long>(off.delivered));
  std::printf("%-28s %11.1f%% %11.1f%%\n", "availability (of achievable)",
              avail_on * 100.0, avail_off * 100.0);
  std::printf("%-28s %12llu %12llu\n", "degraded rows served",
              static_cast<unsigned long long>(on.degraded_rows),
              static_cast<unsigned long long>(off.degraded_rows));
  std::printf("%-28s %12llu %12llu\n", "wasted RPCs on dead device",
              static_cast<unsigned long long>(on.wasted_rpcs),
              static_cast<unsigned long long>(off.wasted_rpcs));
  std::printf("%-28s %11.1fx\n", "RPC saving", rpc_ratio);
  std::printf("%-28s %11.1fs\n", "recovery after revive", on.recovery_s);
  std::printf("%-28s %12s\n", "deterministic",
              deterministic ? "yes" : "NO");

  // ---- sharded worker-kill run ---------------------------------------------
  ShardedResult sh = run_sharded();
  ShardedResult sh_again = run_sharded();
  bool sharded_deterministic = sh.row_log == sh_again.row_log;
  std::printf("\nSharded plane (2 workers; %s crashed t=[%g, %g), worker "
              "shard-0 off the network t=[%g, %g)):\n",
              kCrashedMote, kCrashAt, kReviveAt, kShardKillAt, kShardHealAt);
  std::printf("  %-34s %8llu\n", "rows delivered",
              static_cast<unsigned long long>(sh.delivered));
  std::printf("  %-34s %8llu\n", "degraded rows (wire-preserved)",
              static_cast<unsigned long long>(sh.degraded_rows));
  std::printf("  %-34s %8llu\n", "surviving-shard rows during kill",
              static_cast<unsigned long long>(sh.rows_during_kill));
  std::printf("  %-34s %8llu\n", "killed-shard rows after heal",
              static_cast<unsigned long long>(sh.rows_after_heal));
  std::printf("  %-34s %8llu\n", "czar re-registrations",
              static_cast<unsigned long long>(sh.reregistrations));
  std::printf("  %-34s %8s\n", "deterministic",
              sharded_deterministic ? "yes" : "NO");

  // ---- backplane storm run -------------------------------------------------
  StormResult clean = run_storm(/*storm=*/false, /*reliable=*/true,
                                /*midstorm_aq=*/false);
  StormResult st = run_storm(/*storm=*/true, /*reliable=*/true,
                             /*midstorm_aq=*/false);
  StormResult st_again = run_storm(/*storm=*/true, /*reliable=*/true,
                                   /*midstorm_aq=*/false);
  StormResult abl = run_storm(/*storm=*/true, /*reliable=*/false,
                              /*midstorm_aq=*/false);
  StormResult mid = run_storm(/*storm=*/true, /*reliable=*/true,
                              /*midstorm_aq=*/true);
  bool storm_identical = st.row_log == clean.row_log;
  bool storm_deterministic = st.row_log == st_again.row_log &&
                             st.nacks_sent == st_again.nacks_sent &&
                             st.replay_sent == st_again.replay_sent;
  std::uint64_t ablation_lost = abl.cutoff_delivered < clean.cutoff_delivered
                                    ? clean.cutoff_delivered -
                                          abl.cutoff_delivered
                                    : 0;
  std::printf("\nBackplane storm (2 shards, 8 motes; czar link 10%% loss + "
              "1.5x dup + reorder + 2 ms delay t=[5, 50) of %g s):\n",
              kStormSimSeconds);
  std::printf("  %-34s %8llu\n", "rows delivered (clean run)",
              static_cast<unsigned long long>(clean.delivered));
  std::printf("  %-34s %8llu\n", "rows delivered (storm run)",
              static_cast<unsigned long long>(st.delivered));
  std::printf("  %-34s %8s\n", "storm == clean (to cutoff)",
              storm_identical ? "yes" : "NO");
  std::printf("  %-34s %8llu\n", "chaos drops on the backplane",
              static_cast<unsigned long long>(st.dropped_chaos));
  std::printf("  %-34s %8llu\n", "duplicate msgs dropped (czar)",
              static_cast<unsigned long long>(st.dup_msgs_dropped));
  std::printf("  %-34s %8llu / %llu\n", "NACKs sent / replays answered",
              static_cast<unsigned long long>(st.nacks_sent),
              static_cast<unsigned long long>(st.replay_sent));
  std::printf("  %-34s %8llu\n", "replay buffer high-water mark",
              static_cast<unsigned long long>(st.replay_hwm));
  std::printf("  %-34s %8llu\n", "mid-storm registration retries",
              static_cast<unsigned long long>(mid.retries));
  std::printf("  %-34s %8llu\n", "mid-storm AQ rows",
              static_cast<unsigned long long>(mid.late_rows));
  std::printf("  %-34s %8llu\n", "rows lost with ablation flag",
              static_cast<unsigned long long>(ablation_lost));
  std::printf("  %-34s %8s\n", "deterministic",
              storm_deterministic ? "yes" : "NO");

  aorta::util::JsonWriter w(2);
  w.begin_object();
  w.kv("motes", kMotes);
  w.kv("sim_seconds", kSimSeconds);
  w.key("crash_window_s").begin_array();
  w.value(kCrashAt);
  w.value(kReviveAt);
  w.end_array();
  w.kv("achievable_rows", achievable);
  w.key("supervision_on");
  mode_json(w, on, avail_on);
  w.key("supervision_off");
  mode_json(w, off, avail_off);
  w.kv("rpc_saving", rpc_ratio);
  w.kv("deterministic", deterministic);
  w.key("sharded").begin_object();
  w.kv("delivered", sh.delivered);
  w.kv("degraded_rows", sh.degraded_rows);
  w.kv("rows_during_kill", sh.rows_during_kill);
  w.kv("rows_after_heal", sh.rows_after_heal);
  w.kv("reregistrations", sh.reregistrations);
  w.kv("quarantines", sh.quarantines);
  w.kv("marker_ok", sh.marker_ok);
  w.kv("deterministic", sharded_deterministic);
  w.end_object();
  w.key("storm").begin_object();
  w.kv("clean_delivered", clean.delivered);
  w.kv("storm_delivered", st.delivered);
  w.kv("clean_cutoff_delivered", clean.cutoff_delivered);
  w.kv("storm_cutoff_delivered", st.cutoff_delivered);
  w.kv("identical", storm_identical);
  w.kv("deterministic", storm_deterministic);
  w.kv("dropped_chaos", st.dropped_chaos);
  w.kv("chaos_dup_copies", st.chaos_dup_copies);
  w.kv("dup_msgs_dropped", st.dup_msgs_dropped);
  w.kv("nacks_sent", st.nacks_sent);
  w.kv("acks_sent", st.acks_sent);
  w.kv("replay_sent", st.replay_sent);
  w.kv("replay_hwm", st.replay_hwm);
  w.kv("replay_depth_end", st.replay_depth_end);
  w.kv("giveups", st.giveups);
  w.kv("midstorm_retries", mid.retries);
  w.kv("midstorm_aq_rows", mid.late_rows);
  w.kv("ablation_delivered", abl.cutoff_delivered);
  w.kv("ablation_lost", ablation_lost);
  w.end_object();
  w.end_object();
  std::ofstream out("results/bench_chaos.json");
  out << w.str() << '\n';
  std::printf("\nwrote results/bench_chaos.json\n");

  int rc = 0;
  if (rpc_ratio < 5.0) {
    std::printf("WARNING: RPC saving %.1fx is below the 5x target\n",
                rpc_ratio);
    rc = 1;
  }
  if (avail_on < 0.95) {
    std::printf("WARNING: supervised availability %.1f%% is below 95%%\n",
                avail_on * 100.0);
    rc = 1;
  }
  if (!on.marker_ok || on.degraded_rows == 0) {
    std::printf("WARNING: degradation-marker invariant violated\n");
    rc = 1;
  }
  if (off.degraded_rows != 0) {
    std::printf("WARNING: baseline served degraded rows with supervision "
                "off\n");
    rc = 1;
  }
  if (!deterministic) {
    std::printf("WARNING: supervision-on runs diverged across same-seed "
                "replays\n");
    rc = 1;
  }
  if (!sh.marker_ok || sh.degraded_rows == 0) {
    std::printf("WARNING: sharded degradation-marker invariant violated\n");
    rc = 1;
  }
  if (sh.rows_during_kill == 0) {
    std::printf("WARNING: surviving shard's rows stalled during the worker "
                "kill\n");
    rc = 1;
  }
  if (sh.rows_after_heal == 0 || sh.reregistrations == 0) {
    std::printf("WARNING: czar did not re-register fragments on the healed "
                "worker\n");
    rc = 1;
  }
  if (!sharded_deterministic) {
    std::printf("WARNING: sharded runs diverged across same-seed replays\n");
    rc = 1;
  }
  if (!storm_identical) {
    std::printf("WARNING: storm run lost, duplicated or reordered delivered "
                "rows vs the clean run\n");
    rc = 1;
  }
  if (st.dup_msgs_dropped == 0 || st.nacks_sent == 0 || st.replay_sent == 0 ||
      st.dropped_chaos == 0) {
    std::printf("WARNING: backplane storm did not exercise the reliability "
                "protocol\n");
    rc = 1;
  }
  if (st.replay_hwm == 0 || st.replay_hwm >= 1024) {
    std::printf("WARNING: replay buffer high-water mark %llu out of bounds\n",
                static_cast<unsigned long long>(st.replay_hwm));
    rc = 1;
  }
  if (mid.retries == 0 || mid.late_rows == 0) {
    std::printf("WARNING: mid-storm registration did not retry its way "
                "through\n");
    rc = 1;
  }
  if (ablation_lost == 0) {
    std::printf("WARNING: ablation arm lost no rows — the storm is not "
                "punishing the fail-fast path\n");
    rc = 1;
  }
  if (!storm_deterministic) {
    std::printf("WARNING: storm runs diverged across same-seed replays\n");
    rc = 1;
  }
  return rc;
}
