// Figure 5: time breakdown (scheduling time vs service time) of the five
// algorithms for the 20-request uniform workload on 10 cameras.
//
// Paper reference: scheduling 0.16 / 0.18 / 0.16 / 2.49 / 0.16 s and
// service 5.57 / 5.00 / 8.05 / 4.81 / 14.95 s for LERFA+SRFE, SRFAE, LS,
// SA, RANDOM. SA finds the best (near-optimal) service schedule but its
// scheduling time dwarfs everyone else's — "negligible scheduling time is
// a requirement of scheduling algorithms in pervasive computing".
#include "bench/bench_common.h"
#include "sched/cost_model.h"

int main() {
  using namespace aorta;
  using namespace aorta::benchx;

  auto model = sched::PhotoCostModel::axis2130();
  const auto algorithms = sched::paper_scheduler_names();

  print_header(
      "Figure 5 - Time breakdown at 20 requests / 10 cameras (avg of 10 runs)");
  std::printf("%12s %16s %14s %12s %18s\n", "algorithm", "scheduling[2005]",
              "service (s)", "total (s)", "wall today (ms)");
  CsvWriter csv("fig5_breakdown");
  csv.row({"algorithm", "scheduling_2005_s", "service_s", "total_s",
           "wall_today_ms"});

  for (const auto& algorithm : algorithms) {
    sched::WorkloadSpec spec;
    spec.n_requests = 20;
    spec.n_devices = 10;
    Cell cell = run_cell(algorithm, spec, *model);
    std::printf("%12s %16.2f %14.2f %12.2f %18.3f\n", algorithm.c_str(),
                cell.scheduling_model_s.mean(), cell.service_s.mean(),
                cell.total_s.mean(), cell.scheduling_wall_s.mean() * 1e3);
    csv.row({algorithm, fmt_cell(cell.scheduling_model_s.mean()),
             fmt_cell(cell.service_s.mean()), fmt_cell(cell.total_s.mean()),
             fmt_cell(cell.scheduling_wall_s.mean() * 1e3)});
  }

  std::printf("\npaper:       scheduling 0.16/0.18/0.16/2.49/0.16   "
              "service 5.57/5.00/8.05/4.81/14.95\n");
  std::printf("expectation: SA has the lowest service time but by far the\n"
              "             largest scheduling time; all others negligible.\n");
  return 0;
}
