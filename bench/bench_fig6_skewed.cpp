// Figure 6: makespan of the five algorithms under skewed workloads.
// 10 cameras, 20 requests; half the requests keep all 10 candidates, the
// other half are restricted to a random subset of size skewness * 10,
// skewness in {0.2, 0.3, 0.4}.
//
// Paper reference: SA performs worst (its scheduling time completely
// dominates under eligibility restrictions); for the other four the
// makespan decreases as skewness increases ("due to the increasing
// opportunity of distributing the skewed workload to more candidate
// devices"); our two algorithms remain best.
#include "bench/bench_common.h"
#include "sched/cost_model.h"

int main() {
  using namespace aorta;
  using namespace aorta::benchx;

  auto model = sched::PhotoCostModel::axis2130();
  const std::vector<double> skews = {0.2, 0.3, 0.4};
  const auto algorithms = sched::paper_scheduler_names();

  print_header(
      "Figure 6 - Makespan vs workload skewness (10 cameras, 20 requests)\n"
      "cell = makespan seconds (scheduling[2005 model] + service), avg of 10 runs");

  std::printf("%10s", "skewness");
  for (const auto& a : algorithms) std::printf(" %12s", a.c_str());
  std::printf("\n");

  CsvWriter csv("fig6_skewed");
  {
    std::vector<std::string> header = {"skewness"};
    for (const auto& a : algorithms) header.push_back(a);
    csv.row(header);
  }

  std::vector<std::vector<double>> table;
  for (double skew : skews) {
    std::printf("%10.1f", skew);
    std::vector<double> row;
    for (const auto& algorithm : algorithms) {
      sched::WorkloadSpec spec;
      spec.n_requests = 20;
      spec.n_devices = 10;
      spec.skewness = skew;
      Cell cell = run_cell(algorithm, spec, *model);
      std::printf(" %12.2f", cell.total_s.mean());
      row.push_back(cell.total_s.mean());
    }
    {
      std::vector<std::string> cells = {fmt_cell(skew)};
      for (double v : row) cells.push_back(fmt_cell(v));
      csv.row(cells);
    }
    table.push_back(std::move(row));
    std::printf("\n");
  }

  auto idx = [&](const std::string& name) {
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      if (algorithms[i] == name) return i;
    }
    return std::size_t{0};
  };
  std::printf("\nshape check:\n");
  std::printf("  SA worst at skew 0.2:        %s (SA %.2f vs next-worst %.2f)\n",
              table[0][idx("SA")] >=
                      std::max({table[0][idx("LERFA+SRFE")],
                                table[0][idx("SRFAE")], table[0][idx("LS")]})
                  ? "yes"
                  : "no",
              table[0][idx("SA")],
              std::max({table[0][idx("LERFA+SRFE")], table[0][idx("SRFAE")],
                        table[0][idx("LS")]}));
  for (const char* name : {"LERFA+SRFE", "SRFAE", "LS", "RANDOM"}) {
    std::printf("  %-11s decreasing in skew: %s (%.2f -> %.2f -> %.2f)\n", name,
                table[0][idx(name)] >= table[2][idx(name)] ? "yes" : "no",
                table[0][idx(name)], table[1][idx(name)], table[2][idx(name)]);
  }
  return 0;
}
