// Ablation: what probing buys and what it costs (Section 4).
//
// Sweep the fraction of dead cameras and compare use_probing on/off in
// the full stack. Probing pays a round-trip per candidate per batch but
// (a) excludes dead devices from device selection, and (b) feeds the cost
// model fresh head positions. Without probing, requests routed to dead
// cameras burn the full action TIMEOUT and fail, and the scheduler works
// from stale default status.
#include <cstdio>

#include "core/aorta.h"
#include "util/strings.h"

using namespace aorta;

namespace {

struct Outcome {
  std::uint64_t usable = 0;
  std::uint64_t bad = 0;
  double batch_makespan_s = 0.0;
};

Outcome run(bool use_probing, int dead_cameras, std::uint64_t seed) {
  core::Config config;
  config.seed = seed;
  config.use_probing = use_probing;
  // Isolate the probing knob: failover retries would mask the timeouts
  // this ablation is about.
  config.max_retries = 0;
  core::Aorta sys(config);

  for (int c = 0; c < 6; ++c) {
    std::string id = util::str_format("cam%d", c + 1);
    (void)sys.add_camera(id, util::str_format("10.0.0.%d", c + 1),
                         {{3.0 * c, 0.0, 3.0}, 90.0}, 40.0);
    if (c < dead_cameras) sys.camera(id)->set_online(false);
  }
  for (int m = 0; m < 6; ++m) {
    std::string id = util::str_format("mote%d", m + 1);
    (void)sys.add_mote(id, {2.0 + 2.5 * m, 4.0, 1.0});
    (void)sys.mote(id)->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 900.0, util::Duration::seconds(60),
                                       util::Duration::seconds(2),
                                       util::Duration::seconds(5)));
  }
  for (int q = 1; q <= 6; ++q) {
    (void)sys.exec(util::str_format(
        "CREATE AQ q%d AS SELECT photo(c.ip, s.loc, 'd') FROM sensor s, "
        "camera c WHERE s.id = 'mote%d' AND s.accel_x > 500 AND "
        "coverage(c.id, s.loc)",
        q, q));
  }

  sys.run_for(util::Duration::minutes(8));

  Outcome out;
  for (int q = 1; q <= 6; ++q) {
    auto as = sys.action_stats("q" + std::to_string(q));
    out.usable += as.usable;
    out.bad += as.total_bad();
  }
  for (const auto* op : sys.executor().operators()) {
    out.batch_makespan_s = op->stats().actual_makespan_s.mean();
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "\n================================================================\n"
      "Ablation - probing on/off vs dead-camera fraction (Section 4)\n"
      "6 queries bursting each minute, 6 cameras, 8 sim-min, 3 seeds\n"
      "================================================================\n");
  std::printf("%14s %10s %10s %10s %12s %16s\n", "probing", "dead", "usable",
              "bad", "fail rate", "batch span (s)");

  for (int dead : {0, 2, 4}) {
    for (bool probing : {true, false}) {
      std::uint64_t usable = 0, bad = 0;
      double makespan = 0.0;
      const int kSeeds = 3;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        Outcome out = run(probing, dead, seed);
        usable += out.usable;
        bad += out.bad;
        makespan += out.batch_makespan_s;
      }
      double completed = static_cast<double>(usable + bad);
      std::printf("%14s %10d %10llu %10llu %11.1f%% %16.2f\n",
                  probing ? "on" : "off", dead,
                  static_cast<unsigned long long>(usable),
                  static_cast<unsigned long long>(bad),
                  completed == 0 ? 0.0 : 100.0 * bad / completed,
                  makespan / kSeeds);
    }
  }
  std::printf("\nexpectation: with 0 dead cameras the configurations tie\n"
              "(probing overhead is milliseconds against multi-second\n"
              "actions); as cameras die, no-probing failure rates climb and\n"
              "batch spans inflate by burnt timeouts, while probing keeps\n"
              "routing actions only to live candidates.\n");
  return 0;
}
