// Scalability: "investigating scheduling techniques for a large number of
// heterogeneous devices" (Section 8 future work).
//
// Sweeps the scheduling algorithms far past the paper's 10-camera /
// 30-request envelope and reports service makespan, evaluation counts and
// measured wall time. SA is run only at the smaller sizes (its wall time
// becomes the experiment otherwise — which is itself the finding).
#include "bench/bench_common.h"
#include "sched/cost_model.h"

int main() {
  using namespace aorta;
  using namespace aorta::benchx;

  auto model = sched::PhotoCostModel::axis2130();

  print_header(
      "Scale sweep - service makespan / evals / wall time vs problem size\n"
      "(avg of 3 runs; ratio n/m fixed at 4)");
  std::printf("%12s %8s %8s %14s %16s %14s\n", "algorithm", "n", "m",
              "service (s)", "cost evals", "wall (ms)");

  struct Point {
    int n, m;
  };
  const std::vector<Point> points = {{40, 10}, {100, 25}, {200, 50}, {400, 100}};

  for (const std::string& algorithm :
       {std::string("LERFA+SRFE"), std::string("SRFAE"), std::string("LPT"),
        std::string("LS"), std::string("RANDOM"), std::string("SA")}) {
    for (const Point& p : points) {
      if (algorithm == "SA" && p.n > 100) continue;  // hours, not insight
      aorta::util::Summary service, evals, wall;
      auto scheduler = sched::make_scheduler(algorithm);
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        sched::WorkloadSpec spec;
        spec.n_requests = p.n;
        spec.n_devices = p.m;
        spec.seed = seed;
        sched::Workload w = sched::make_photo_workload(spec);
        aorta::util::Rng rng(seed + 50);
        auto result = scheduler->schedule(w.requests, w.devices, *model, rng);
        service.add(result.service_makespan_s);
        evals.add(static_cast<double>(result.cost_evaluations));
        wall.add(result.scheduling_wall_s * 1e3);
      }
      std::printf("%12s %8d %8d %14.2f %16.0f %14.3f\n", algorithm.c_str(),
                  p.n, p.m, service.mean(), evals.mean(), wall.mean());
    }
  }
  std::printf("\nexpectation: the greedy algorithms stay in microsecond-to-\n"
              "millisecond scheduling territory at 400 requests x 100 devices\n"
              "(real-time viable); SA's evaluation bill grows superlinearly.\n");
  return 0;
}
