// Compiled expression evaluation bench (query/eval_program.h).
//
// Measures per-row predicate evaluation throughput (rows/sec) of the
// tree-walking interpreter (expr_eval.h, the reference semantics) against
// the slot-resolved compiled EvalPrograms, across three predicate
// complexities and 1..256 co-resident AQs (distinct program instances
// evaluated round-robin, modelling many tenants sharing one delivered
// batch). Before any timing, every (program, tuple) pair is checked for
// divergence against the interpreter — value AND error strings must match
// byte-for-byte.
//
// Acceptance (full mode): compiled evaluation is >= 3x the interpreter on
// the mid-complexity predicate at every AQ count, and zero divergences.
// Violations exit non-zero. `--smoke` runs reduced iterations and gates
// only on divergence (CI runs it on every push; the perf gate needs a
// quiet machine and a Release build).
//
// Second sweep: registered-AQ *matching* at scale. N band/threshold AQs
// (1k / 10k / 100k in full mode) register against one simulated sensor
// table and the engine runs the identical workload twice — with the
// predicate index (Config::predicate_index = true) and with exhaustive
// per-AQ evaluation (= false, the pre-index architecture). Gates: both
// modes fire the exact same per-AQ event sequence counts, and in full
// mode the indexed engine is >= 10x faster at the top point with the
// index evaluating <= 5% of the registered population per delivered
// tuple (sub-linear matching).
//
// Writes results/bench_eval.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/aorta.h"
#include "query/eval_program.h"
#include "query/parser.h"
#include "util/json_writer.h"

namespace {

using aorta::device::Value;
using aorta::query::BindingFrame;
using aorta::query::Env;
using aorta::query::EvalProgram;
using aorta::query::ExprPtr;
using aorta::query::FunctionRegistry;

constexpr int kTuples = 8;

std::string render(const aorta::util::Result<Value>& r) {
  if (r.is_ok()) return "ok:" + aorta::device::value_to_string(r.value());
  return "err:" + r.status().to_string();
}

struct Complexity {
  const char* name;
  // %d is replaced by a per-AQ threshold so each AQ compiles a distinct
  // program (no shared-program cache effects flattering the sweep).
  const char* pattern;
};

const Complexity kComplexities[] = {
    {"simple", "s.accel_x > %d"},
    {"mid", "s.accel_x > %d AND s.temp < 30 OR s.count >= 3"},
    {"complex",
     "(s.accel_x + s.temp * 2) / 3 > s.count AND NOT (s.id = 'm7') "
     "OR s.armed AND s.accel_x - %d > 0"},
};

struct Point {
  std::string complexity;
  int aqs = 0;
  double interp_rows_per_sec = 0.0;
  double compiled_rows_per_sec = 0.0;
  double speedup = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------- registered-AQ matching

struct MatchModeResult {
  double run_seconds = 0.0;       // wall clock of run_for (matching load)
  std::uint64_t events_total = 0;
  std::vector<std::uint64_t> events_per_aq;
  // Index-side counters (zero in exhaustive mode).
  std::uint64_t probes = 0;
  std::uint64_t evaluated = 0;  // exact skips + residual program runs
  std::uint64_t pruned = 0;
};

// N AQs over one 8-mote sensor table: 99% narrow bands
// (lo <= accel_x < lo+5, lo spread over the signal range — the
// 100k-tenant shape where any tuple interests few queries) plus 1% open
// thresholds (accel_x > T, the paper's flagship predicate). Sine signals
// sweep the full range so band entry/exit edges fire continuously.
// Registration happens outside the timed window; run_for wall time is the
// matching + delivery bill.
MatchModeResult run_match_mode(int aqs, bool indexed, double sim_seconds) {
  aorta::core::Config cfg;
  cfg.seed = 42;
  cfg.predicate_index = indexed;
  aorta::core::Aorta sys(cfg);
  // Perfect, glitch-free acquisition: the two modes differ in broker
  // subscription topology, so any probabilistic read failure would
  // consume RNG draws differently and void the identical-events check.
  (void)sys.network().set_link(aorta::comm::EngineNode::kNodeId,
                               aorta::net::LinkModel::perfect());
  for (int i = 0; i < 8; ++i) {
    std::string id = "mote" + std::to_string(i);
    (void)sys.add_mote(id, {static_cast<double>(3 * i), 0, 1});
    sys.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.network().set_link(id, aorta::net::LinkModel::perfect());
    (void)sys.mote(id)->set_signal(
        "accel_x", aorta::devices::sine_signal(500.0, 480.0, 7.0 + i,
                                               0.9 * i));
  }
  for (int q = 0; q < aqs; ++q) {
    char sql[256];
    if (q % 100 == 0) {
      std::snprintf(sql, sizeof(sql),
                    "CREATE AQ m%d AS SELECT s.accel_x FROM sensor s "
                    "WHERE s.accel_x > %d", q, (q * 7919) % 1000);
    } else {
      int lo = (q * 7919) % 1000;
      std::snprintf(sql, sizeof(sql),
                    "CREATE AQ m%d AS SELECT s.accel_x FROM sensor s "
                    "WHERE s.accel_x >= %d AND s.accel_x < %d", q, lo,
                    lo + 5);
    }
    auto r = sys.exec(sql);
    if (!r.is_ok()) {
      std::fprintf(stderr, "CREATE AQ failed: %s\n",
                   r.status().to_string().c_str());
      std::exit(2);
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  sys.run_for(aorta::util::Duration::seconds(sim_seconds));
  MatchModeResult m;
  m.run_seconds = seconds_since(t0);
  m.events_per_aq.reserve(static_cast<std::size_t>(aqs));
  for (int q = 0; q < aqs; ++q) {
    const aorta::query::QueryStats* qs =
        sys.query_stats("m" + std::to_string(q));
    std::uint64_t events = qs != nullptr ? qs->events : 0;
    m.events_per_aq.push_back(events);
    m.events_total += events;
  }
  if (indexed) {
    m.probes = sys.metrics().counter_value("eval.index.probes");
    m.evaluated = sys.metrics().counter_value("eval.index.exact_skips") +
                  sys.metrics().counter_value("eval.index.residual_evals");
    m.pruned = sys.metrics().counter_value("eval.index.pruned");
  }
  return m;
}

struct MatchPoint {
  int aqs = 0;
  MatchModeResult indexed;
  MatchModeResult exhaustive;
  bool events_identical = false;
  double speedup = 0.0;
  double evaluated_per_probe = 0.0;  // avg AQs evaluated per swept tuple
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const long iters = smoke ? 20000 : 2000000;

  // One sensor-shaped schema, kTuples rows with varied values (including
  // NULLs) so every branch of every predicate gets exercised.
  aorta::comm::Schema schema("sensor",
                             {{"id", aorta::device::AttrType::kString, false},
                              {"accel_x", aorta::device::AttrType::kDouble, true},
                              {"temp", aorta::device::AttrType::kDouble, true},
                              {"count", aorta::device::AttrType::kInt, false},
                              {"armed", aorta::device::AttrType::kBool, false}});
  std::vector<aorta::comm::Tuple> tuples;
  for (int i = 0; i < kTuples; ++i) {
    aorta::comm::Tuple t(&schema, "m" + std::to_string(i));
    t.set_by_name("id", Value{std::string("m") + std::to_string(i)});
    t.set_by_name("accel_x", Value{120.0 * i});
    if (i % 3 != 0) t.set_by_name("temp", Value{20.0 + i});  // every 3rd NULL
    t.set_by_name("count", Value{static_cast<std::int64_t>(i % 5)});
    t.set_by_name("armed", Value{i % 2 == 0});
    tuples.push_back(std::move(t));
  }

  FunctionRegistry functions;
  std::vector<std::string> aliases = {"s"};
  std::map<std::string, const aorta::comm::Schema*> schemas = {{"s", &schema}};

  std::printf("Compiled vs interpreted predicate evaluation, %ld evals per "
              "point%s\n", iters, smoke ? " (smoke)" : "");
  std::printf("\n%8s %6s %16s %16s %9s\n", "pred", "aqs", "interp rows/s",
              "compiled rows/s", "speedup");

  const std::vector<int> sweep = {1, 4, 16, 64, 256};
  std::vector<Point> points;
  long divergences = 0;
  double min_speedup_mid = 1e300;

  for (const Complexity& cx : kComplexities) {
    for (int aqs : sweep) {
      // Compile one distinct program per AQ.
      std::vector<ExprPtr> exprs;
      std::vector<EvalProgram> programs;
      for (int q = 0; q < aqs; ++q) {
        char text[256];
        std::snprintf(text, sizeof(text), cx.pattern, 400 + q);
        auto e = aorta::query::parse_expression(text);
        if (!e.is_ok()) {
          std::fprintf(stderr, "parse failed: %s\n", text);
          return 2;
        }
        auto p = EvalProgram::compile(*e.value(), aliases, schemas, functions);
        if (!p.is_ok()) {
          std::fprintf(stderr, "compile failed: %s\n",
                       p.status().to_string().c_str());
          return 2;
        }
        exprs.push_back(std::move(e).value());
        programs.push_back(std::move(p).value());
      }

      // Divergence check first: every program x tuple, byte-identical.
      for (int q = 0; q < aqs; ++q) {
        for (const aorta::comm::Tuple& t : tuples) {
          BindingFrame frame;
          frame.size = 1;
          frame.set(0, &t);
          Env env;
          env.bind("s", &t);
          std::string c = render(programs[q].run(frame));
          std::string o = render(aorta::query::eval(*exprs[q], env, functions));
          if (c != o) {
            ++divergences;
            std::fprintf(stderr, "DIVERGENCE [%s aq%d %s]: compiled %s vs "
                         "interpreted %s\n", cx.name, q,
                         t.source_device().c_str(), c.c_str(), o.c_str());
          }
        }
      }

      // Interpreted timing: Env rebuilt per row, like the pre-compilation
      // executor did.
      long hits = 0;
      auto t0 = std::chrono::steady_clock::now();
      for (long i = 0; i < iters; ++i) {
        const aorta::comm::Tuple& t = tuples[i % kTuples];
        Env env;
        env.bind("s", &t);
        if (aorta::query::eval_predicate(*exprs[i % aqs], env, functions)) {
          ++hits;
        }
      }
      double interp_s = seconds_since(t0);

      // Compiled timing: fill a frame, run the program.
      long chits = 0;
      t0 = std::chrono::steady_clock::now();
      for (long i = 0; i < iters; ++i) {
        BindingFrame frame;
        frame.size = 1;
        frame.set(0, &tuples[i % kTuples]);
        if (programs[i % aqs].run_predicate(frame)) ++chits;
      }
      double compiled_s = seconds_since(t0);

      if (hits != chits) {
        ++divergences;
        std::fprintf(stderr, "DIVERGENCE [%s %d aqs]: %ld interpreted hits "
                     "vs %ld compiled\n", cx.name, aqs, hits, chits);
      }

      Point pt;
      pt.complexity = cx.name;
      pt.aqs = aqs;
      pt.interp_rows_per_sec = interp_s > 0 ? iters / interp_s : 0.0;
      pt.compiled_rows_per_sec = compiled_s > 0 ? iters / compiled_s : 0.0;
      pt.speedup = pt.interp_rows_per_sec > 0
                       ? pt.compiled_rows_per_sec / pt.interp_rows_per_sec
                       : 0.0;
      if (pt.complexity == "mid") {
        min_speedup_mid = std::min(min_speedup_mid, pt.speedup);
      }
      std::printf("%8s %6d %16.0f %16.0f %8.1fx\n", cx.name, aqs,
                  pt.interp_rows_per_sec, pt.compiled_rows_per_sec,
                  pt.speedup);
      points.push_back(std::move(pt));
    }
  }

  // Registered-AQ matching sweep: indexed vs exhaustive engines.
  const std::vector<int> match_sweep =
      smoke ? std::vector<int>{200, 2000}
            : std::vector<int>{1000, 10000, 100000};
  const double match_sim_s = smoke ? 4.0 : 12.0;
  std::printf("\nRegistered-AQ matching, %g simulated seconds per point\n",
              match_sim_s);
  std::printf("\n%8s %12s %12s %9s %12s %8s\n", "aqs", "s:exhaust",
              "s:indexed", "speedup", "evals/tuple", "events");
  std::vector<MatchPoint> match_points;
  bool match_events_identical = true;
  for (int aqs : match_sweep) {
    MatchPoint mp;
    mp.aqs = aqs;
    mp.exhaustive = run_match_mode(aqs, /*indexed=*/false, match_sim_s);
    mp.indexed = run_match_mode(aqs, /*indexed=*/true, match_sim_s);
    mp.events_identical =
        mp.indexed.events_per_aq == mp.exhaustive.events_per_aq;
    if (!mp.events_identical) match_events_identical = false;
    mp.speedup = mp.indexed.run_seconds > 0
                     ? mp.exhaustive.run_seconds / mp.indexed.run_seconds
                     : 0.0;
    mp.evaluated_per_probe =
        mp.indexed.probes > 0
            ? static_cast<double>(mp.indexed.evaluated) /
                  static_cast<double>(mp.indexed.probes)
            : 0.0;
    std::printf("%8d %12.3f %12.3f %8.1fx %12.1f %8llu%s\n", aqs,
                mp.exhaustive.run_seconds, mp.indexed.run_seconds, mp.speedup,
                mp.evaluated_per_probe,
                static_cast<unsigned long long>(mp.indexed.events_total),
                mp.events_identical ? "" : "  EVENTS-DIVERGED");
    match_points.push_back(std::move(mp));
  }
  const MatchPoint& match_top = match_points.back();

  aorta::util::JsonWriter w(2);
  w.begin_object();
  w.kv("iters", static_cast<std::int64_t>(iters));
  w.kv("smoke", smoke);
  w.key("points").begin_array();
  for (const Point& p : points) {
    w.begin_object();
    w.kv("complexity", p.complexity);
    w.kv("aqs", p.aqs);
    w.kv("interp_rows_per_sec", p.interp_rows_per_sec);
    w.kv("compiled_rows_per_sec", p.compiled_rows_per_sec);
    w.kv("speedup", p.speedup);
    w.end_object();
  }
  w.end_array();
  w.kv("min_speedup_mid", min_speedup_mid);
  w.kv("divergences", static_cast<std::int64_t>(divergences));
  w.key("match").begin_array();
  for (const MatchPoint& mp : match_points) {
    w.begin_object();
    w.kv("aqs", mp.aqs);
    w.key("exhaustive").begin_object();
    w.kv("run_seconds", mp.exhaustive.run_seconds);
    w.kv("events", mp.exhaustive.events_total);
    w.end_object();
    w.key("indexed").begin_object();
    w.kv("run_seconds", mp.indexed.run_seconds);
    w.kv("events", mp.indexed.events_total);
    w.kv("probes", mp.indexed.probes);
    w.kv("evaluated", mp.indexed.evaluated);
    w.kv("pruned", mp.indexed.pruned);
    w.end_object();
    w.kv("speedup", mp.speedup);
    w.kv("evaluated_per_probe", mp.evaluated_per_probe);
    w.kv("events_identical", mp.events_identical);
    w.end_object();
  }
  w.end_array();
  w.kv("match_aqs_max", match_top.aqs);
  w.kv("match_speedup_at_max", match_top.speedup);
  w.kv("match_evaluated_per_probe_at_max", match_top.evaluated_per_probe);
  w.kv("match_events_identical", match_events_identical);
  w.end_object();

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream out("results/bench_eval.json");
  out << w.str() << '\n';
  std::printf("\nwrote results/bench_eval.json\n");

  int rc = 0;
  if (divergences > 0) {
    std::printf("WARNING: %ld divergence(s) between compiled and "
                "interpreted evaluation\n", divergences);
    rc = 1;
  }
  if (!smoke && min_speedup_mid < 3.0) {
    std::printf("WARNING: mid-complexity speedup is %.1fx, below the 3x "
                "target\n", min_speedup_mid);
    rc = 1;
  }
  if (!match_events_identical) {
    std::printf("WARNING: indexed and exhaustive matching fired different "
                "event sequences\n");
    rc = 1;
  }
  if (!smoke && match_top.speedup < 10.0) {
    std::printf("WARNING: indexed matching at %d AQs is %.1fx over "
                "exhaustive, below the 10x target\n", match_top.aqs,
                match_top.speedup);
    rc = 1;
  }
  if (!smoke &&
      match_top.evaluated_per_probe > 0.05 * match_top.aqs) {
    std::printf("WARNING: index evaluated %.1f AQs per tuple at %d "
                "registered (not sub-linear)\n",
                match_top.evaluated_per_probe, match_top.aqs);
    rc = 1;
  }
  return rc;
}
