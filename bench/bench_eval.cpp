// Compiled expression evaluation bench (query/eval_program.h).
//
// Measures per-row predicate evaluation throughput (rows/sec) of the
// tree-walking interpreter (expr_eval.h, the reference semantics) against
// the slot-resolved compiled EvalPrograms, across three predicate
// complexities and 1..256 co-resident AQs (distinct program instances
// evaluated round-robin, modelling many tenants sharing one delivered
// batch). Before any timing, every (program, tuple) pair is checked for
// divergence against the interpreter — value AND error strings must match
// byte-for-byte.
//
// Acceptance (full mode): compiled evaluation is >= 3x the interpreter on
// the mid-complexity predicate at every AQ count, and zero divergences.
// Violations exit non-zero. `--smoke` runs reduced iterations and gates
// only on divergence (CI runs it on every push; the perf gate needs a
// quiet machine and a Release build).
//
// Writes results/bench_eval.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "query/eval_program.h"
#include "query/parser.h"
#include "util/json_writer.h"

namespace {

using aorta::device::Value;
using aorta::query::BindingFrame;
using aorta::query::Env;
using aorta::query::EvalProgram;
using aorta::query::ExprPtr;
using aorta::query::FunctionRegistry;

constexpr int kTuples = 8;

std::string render(const aorta::util::Result<Value>& r) {
  if (r.is_ok()) return "ok:" + aorta::device::value_to_string(r.value());
  return "err:" + r.status().to_string();
}

struct Complexity {
  const char* name;
  // %d is replaced by a per-AQ threshold so each AQ compiles a distinct
  // program (no shared-program cache effects flattering the sweep).
  const char* pattern;
};

const Complexity kComplexities[] = {
    {"simple", "s.accel_x > %d"},
    {"mid", "s.accel_x > %d AND s.temp < 30 OR s.count >= 3"},
    {"complex",
     "(s.accel_x + s.temp * 2) / 3 > s.count AND NOT (s.id = 'm7') "
     "OR s.armed AND s.accel_x - %d > 0"},
};

struct Point {
  std::string complexity;
  int aqs = 0;
  double interp_rows_per_sec = 0.0;
  double compiled_rows_per_sec = 0.0;
  double speedup = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const long iters = smoke ? 20000 : 2000000;

  // One sensor-shaped schema, kTuples rows with varied values (including
  // NULLs) so every branch of every predicate gets exercised.
  aorta::comm::Schema schema("sensor",
                             {{"id", aorta::device::AttrType::kString, false},
                              {"accel_x", aorta::device::AttrType::kDouble, true},
                              {"temp", aorta::device::AttrType::kDouble, true},
                              {"count", aorta::device::AttrType::kInt, false},
                              {"armed", aorta::device::AttrType::kBool, false}});
  std::vector<aorta::comm::Tuple> tuples;
  for (int i = 0; i < kTuples; ++i) {
    aorta::comm::Tuple t(&schema, "m" + std::to_string(i));
    t.set_by_name("id", Value{std::string("m") + std::to_string(i)});
    t.set_by_name("accel_x", Value{120.0 * i});
    if (i % 3 != 0) t.set_by_name("temp", Value{20.0 + i});  // every 3rd NULL
    t.set_by_name("count", Value{static_cast<std::int64_t>(i % 5)});
    t.set_by_name("armed", Value{i % 2 == 0});
    tuples.push_back(std::move(t));
  }

  FunctionRegistry functions;
  std::vector<std::string> aliases = {"s"};
  std::map<std::string, const aorta::comm::Schema*> schemas = {{"s", &schema}};

  std::printf("Compiled vs interpreted predicate evaluation, %ld evals per "
              "point%s\n", iters, smoke ? " (smoke)" : "");
  std::printf("\n%8s %6s %16s %16s %9s\n", "pred", "aqs", "interp rows/s",
              "compiled rows/s", "speedup");

  const std::vector<int> sweep = {1, 4, 16, 64, 256};
  std::vector<Point> points;
  long divergences = 0;
  double min_speedup_mid = 1e300;

  for (const Complexity& cx : kComplexities) {
    for (int aqs : sweep) {
      // Compile one distinct program per AQ.
      std::vector<ExprPtr> exprs;
      std::vector<EvalProgram> programs;
      for (int q = 0; q < aqs; ++q) {
        char text[256];
        std::snprintf(text, sizeof(text), cx.pattern, 400 + q);
        auto e = aorta::query::parse_expression(text);
        if (!e.is_ok()) {
          std::fprintf(stderr, "parse failed: %s\n", text);
          return 2;
        }
        auto p = EvalProgram::compile(*e.value(), aliases, schemas, functions);
        if (!p.is_ok()) {
          std::fprintf(stderr, "compile failed: %s\n",
                       p.status().to_string().c_str());
          return 2;
        }
        exprs.push_back(std::move(e).value());
        programs.push_back(std::move(p).value());
      }

      // Divergence check first: every program x tuple, byte-identical.
      for (int q = 0; q < aqs; ++q) {
        for (const aorta::comm::Tuple& t : tuples) {
          BindingFrame frame;
          frame.size = 1;
          frame.set(0, &t);
          Env env;
          env.bind("s", &t);
          std::string c = render(programs[q].run(frame));
          std::string o = render(aorta::query::eval(*exprs[q], env, functions));
          if (c != o) {
            ++divergences;
            std::fprintf(stderr, "DIVERGENCE [%s aq%d %s]: compiled %s vs "
                         "interpreted %s\n", cx.name, q,
                         t.source_device().c_str(), c.c_str(), o.c_str());
          }
        }
      }

      // Interpreted timing: Env rebuilt per row, like the pre-compilation
      // executor did.
      long hits = 0;
      auto t0 = std::chrono::steady_clock::now();
      for (long i = 0; i < iters; ++i) {
        const aorta::comm::Tuple& t = tuples[i % kTuples];
        Env env;
        env.bind("s", &t);
        if (aorta::query::eval_predicate(*exprs[i % aqs], env, functions)) {
          ++hits;
        }
      }
      double interp_s = seconds_since(t0);

      // Compiled timing: fill a frame, run the program.
      long chits = 0;
      t0 = std::chrono::steady_clock::now();
      for (long i = 0; i < iters; ++i) {
        BindingFrame frame;
        frame.size = 1;
        frame.set(0, &tuples[i % kTuples]);
        if (programs[i % aqs].run_predicate(frame)) ++chits;
      }
      double compiled_s = seconds_since(t0);

      if (hits != chits) {
        ++divergences;
        std::fprintf(stderr, "DIVERGENCE [%s %d aqs]: %ld interpreted hits "
                     "vs %ld compiled\n", cx.name, aqs, hits, chits);
      }

      Point pt;
      pt.complexity = cx.name;
      pt.aqs = aqs;
      pt.interp_rows_per_sec = interp_s > 0 ? iters / interp_s : 0.0;
      pt.compiled_rows_per_sec = compiled_s > 0 ? iters / compiled_s : 0.0;
      pt.speedup = pt.interp_rows_per_sec > 0
                       ? pt.compiled_rows_per_sec / pt.interp_rows_per_sec
                       : 0.0;
      if (pt.complexity == "mid") {
        min_speedup_mid = std::min(min_speedup_mid, pt.speedup);
      }
      std::printf("%8s %6d %16.0f %16.0f %8.1fx\n", cx.name, aqs,
                  pt.interp_rows_per_sec, pt.compiled_rows_per_sec,
                  pt.speedup);
      points.push_back(std::move(pt));
    }
  }

  aorta::util::JsonWriter w(2);
  w.begin_object();
  w.kv("iters", static_cast<std::int64_t>(iters));
  w.kv("smoke", smoke);
  w.key("points").begin_array();
  for (const Point& p : points) {
    w.begin_object();
    w.kv("complexity", p.complexity);
    w.kv("aqs", p.aqs);
    w.kv("interp_rows_per_sec", p.interp_rows_per_sec);
    w.kv("compiled_rows_per_sec", p.compiled_rows_per_sec);
    w.kv("speedup", p.speedup);
    w.end_object();
  }
  w.end_array();
  w.kv("min_speedup_mid", min_speedup_mid);
  w.kv("divergences", static_cast<std::int64_t>(divergences));
  w.end_object();

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream out("results/bench_eval.json");
  out << w.str() << '\n';
  std::printf("\nwrote results/bench_eval.json\n");

  int rc = 0;
  if (divergences > 0) {
    std::printf("WARNING: %ld divergence(s) between compiled and "
                "interpreted evaluation\n", divergences);
    rc = 1;
  }
  if (!smoke && min_speedup_mid < 3.0) {
    std::printf("WARNING: mid-complexity speedup is %.1fx, below the 3x "
                "target\n", min_speedup_mid);
    rc = 1;
  }
  return rc;
}
