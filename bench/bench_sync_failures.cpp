// Section 6.2: effects of device synchronization.
//
// The paper's setup: 10 action-embedded queries registered in a batch,
// query i taking a photo of mote i's location every minute, two AXIS
// cameras covering the lab. Without synchronization, concurrent photo()
// requests interfere on the cameras: "more than half of the action
// requests failed (connection to the camera timed out), resulted in
// blurred photos, or took photos at wrong positions. In contrast, with
// our device synchronization mechanism ... nearly 10%."
//
// This bench runs the same workload twice through the full Aorta stack
// (query engine -> shared photo operator -> probe -> schedule -> execute)
// with the synchronization mechanisms (locking + probing) off and on.
#include <cstdio>

#include "core/aorta.h"
#include "util/strings.h"

using namespace aorta;

namespace {

struct Outcome {
  std::uint64_t requests = 0;
  std::uint64_t usable = 0;
  std::uint64_t bad = 0;  // failed + degraded + no candidate
};

Outcome run_workload(bool synchronized_devices, std::uint64_t seed) {
  core::Config config;
  config.seed = seed;
  config.use_locks = synchronized_devices;
  config.use_probing = synchronized_devices;
  config.scheduler = "SRFAE";
  // The paper's prototype reported action failures to the application;
  // failover retries are this reproduction's extension and are switched
  // off here to measure what Section 6.2 measured.
  config.max_retries = 0;
  core::Aorta sys(config);

  // Two cameras on the lab ceiling, ten motes at points of interest, all
  // within both cameras' view ranges (Section 6.1).
  (void)sys.add_camera("cam1", "192.168.0.90", {{0.0, 0.0, 3.0}, 0.0}, 30.0);
  (void)sys.add_camera("cam2", "192.168.0.91", {{12.0, 9.0, 3.0}, 180.0}, 30.0);
  for (int i = 1; i <= 10; ++i) {
    std::string mote_id = "mote" + std::to_string(i);
    device::Location loc{1.0 + (i % 5) * 2.5, 1.0 + (i / 5) * 3.5, 1.0};
    (void)sys.add_mote(mote_id, loc);
    // One movement event per minute per mote; all queries fire together
    // (registered "in a batch", so their events coincide).
    (void)sys.mote(mote_id)->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 800.0, util::Duration::seconds(60),
                                       util::Duration::seconds(2),
                                       util::Duration::seconds(5)));
  }

  for (int i = 1; i <= 10; ++i) {
    std::string sql = util::str_format(
        "CREATE AQ q%d AS SELECT photo(c.ip, s.loc, 'photos/admin') "
        "FROM sensor s, camera c "
        "WHERE s.id = 'mote%d' AND s.accel_x > 500 AND coverage(c.id, s.loc)",
        i, i);
    auto r = sys.exec(sql);
    if (!r.is_ok()) {
      std::fprintf(stderr, "register q%d failed: %s\n", i,
                   r.status().to_string().c_str());
    }
  }

  sys.run_for(util::Duration::minutes(10));

  Outcome out;
  for (int i = 1; i <= 10; ++i) {
    auto stats = sys.action_stats("q" + std::to_string(i));
    out.requests += stats.requests;
    out.usable += stats.usable;
    out.bad += stats.total_bad();
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "\n================================================================\n"
      "Section 6.2 - Effects of device synchronization\n"
      "10 photo queries (1 event/min each), 2 cameras, 10 simulated min,\n"
      "failure = timed out, blurred, or wrong position (as in the paper)\n"
      "================================================================\n");
  std::printf("%28s %10s %10s %10s %10s\n", "configuration", "requests",
              "usable", "bad", "fail rate");

  for (bool synchronized_devices : {false, true}) {
    std::uint64_t requests = 0, usable = 0, bad = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Outcome out = run_workload(synchronized_devices, seed);
      requests += out.requests;
      usable += out.usable;
      bad += out.bad;
    }
    double completed = static_cast<double>(usable + bad);
    double rate = completed == 0.0 ? 0.0 : 100.0 * static_cast<double>(bad) /
                                               completed;
    std::printf("%28s %10llu %10llu %10llu %9.1f%%\n",
                synchronized_devices ? "locking + probing (Aorta)"
                                     : "no synchronization",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(usable),
                static_cast<unsigned long long>(bad), rate);
  }

  std::printf("\npaper: >50%% action failures without synchronization, "
              "~10%% with it\n");
  return 0;
}
