// Shared helpers for the experiment benches.
//
// Scheduling-time calibration: the paper measured scheduling time on a
// 1.5 GHz Pentium-M running Java (Figure 5: 0.16-0.18 s for the greedy
// algorithms, 2.49 s for SA at n=20, m=10). Scheduling effort in this
// reproduction is counted in *cost-model evaluations*, a hardware-
// independent measure, and converted to 2005-grade seconds as
//
//    scheduling_2005(evals) = kFixedOverhead2005S + evals * kPerEval2005S
//
// kPerEval2005S is calibrated so SA's n=20 uniform workload reproduces the
// published 2.49 s (SA performs ~1.4e5 evaluations there); the fixed
// overhead reproduces the constant ~0.16 s floor the paper reports for
// every algorithm (JVM + engine plumbing around the scheduling call).
// Measured wall time on today's hardware is reported alongside.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sched/algorithms.h"
#include "sched/workload.h"
#include "util/stats.h"

namespace aorta::benchx {

constexpr double kPerEval2005S = 1.77e-5;
constexpr double kFixedOverhead2005S = 0.16;
constexpr int kRunsPerPoint = 10;  // "average of results from ten
                                   // independent runs" (Section 6.3)

inline double scheduling_2005_s(std::uint64_t evals) {
  return kFixedOverhead2005S + static_cast<double>(evals) * kPerEval2005S;
}

// Averaged metrics of one (algorithm, workload spec) cell.
struct Cell {
  aorta::util::Summary service_s;
  aorta::util::Summary scheduling_model_s;
  aorta::util::Summary scheduling_wall_s;
  aorta::util::Summary total_s;  // scheduling (2005 model) + service
};

// Run one algorithm over kRunsPerPoint seeded workloads.
inline Cell run_cell(const std::string& algorithm,
                     aorta::sched::WorkloadSpec spec,
                     const aorta::sched::CostModel& model) {
  Cell cell;
  auto scheduler = aorta::sched::make_scheduler(algorithm);
  for (int run = 0; run < kRunsPerPoint; ++run) {
    spec.seed = 100 + static_cast<std::uint64_t>(run);
    aorta::sched::Workload w = aorta::sched::make_photo_workload(spec);
    aorta::util::Rng rng(7000 + static_cast<std::uint64_t>(run));
    aorta::sched::ScheduleResult result =
        scheduler->schedule(w.requests, w.devices, model, rng);
    double sched_2005 = scheduling_2005_s(result.cost_evaluations);
    cell.service_s.add(result.service_makespan_s);
    cell.scheduling_model_s.add(sched_2005);
    cell.scheduling_wall_s.add(result.scheduling_wall_s);
    cell.total_s.add(result.service_makespan_s + sched_2005);
  }
  return cell;
}

// Append machine-readable rows next to the human tables: every figure
// bench also writes results/<name>.csv so plots can be regenerated
// without scraping stdout.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& name) {
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    if (!ec) out_.open("results/" + name + ".csv");
  }

  void row(const std::vector<std::string>& cells) {
    if (!out_.is_open()) return;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out_ << ',';
      out_ << cells[i];
    }
    out_ << '\n';
  }

  bool open() const { return out_.is_open(); }

 private:
  std::ofstream out_;
};

inline std::string fmt_cell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace aorta::benchx
