// Figure 4: makespan of the five scheduling algorithms under a uniform
// workload (10 cameras, every camera a candidate for every request),
// #requests in {10, 20, 30}, per-request cost in [0.36, 5.36] s, each
// point the average of ten independent runs. Makespan = scheduling time
// (2005-calibrated model) + service time, as in the paper.
//
// Paper reference (n = 20): LERFA+SRFE 5.73 s, SRFAE 5.18 s, LS 8.21 s,
// SA 7.29 s; RANDOM much worse than all four. Ours sub-linear in n, LS/SA
// nearly linear.
#include "bench/bench_common.h"
#include "sched/cost_model.h"

int main() {
  using namespace aorta;
  using namespace aorta::benchx;

  auto model = sched::PhotoCostModel::axis2130();
  const std::vector<int> request_counts = {10, 20, 30};
  const auto algorithms = sched::paper_scheduler_names();

  print_header(
      "Figure 4 - Makespan vs #requests, uniform workload (10 cameras)\n"
      "cell = makespan seconds (scheduling[2005 model] + service), avg of 10 runs");

  std::printf("%10s", "#requests");
  for (const auto& a : algorithms) std::printf(" %12s", a.c_str());
  std::printf("\n");

  CsvWriter csv("fig4_uniform");
  {
    std::vector<std::string> header = {"n_requests"};
    for (const auto& a : algorithms) header.push_back(a);
    csv.row(header);
  }

  std::vector<std::vector<double>> table;
  for (int n : request_counts) {
    std::printf("%10d", n);
    std::vector<double> row;
    for (const auto& algorithm : algorithms) {
      sched::WorkloadSpec spec;
      spec.n_requests = n;
      spec.n_devices = 10;
      Cell cell = run_cell(algorithm, spec, *model);
      std::printf(" %12.2f", cell.total_s.mean());
      row.push_back(cell.total_s.mean());
    }
    {
      std::vector<std::string> cells = {std::to_string(n)};
      for (double v : row) cells.push_back(fmt_cell(v));
      csv.row(cells);
    }
    table.push_back(std::move(row));
    std::printf("\n");
  }

  std::printf("\npaper (n=20):      LERFA+SRFE 5.73   SRFAE 5.18   LS 8.21   "
              "SA 7.29   RANDOM ~15\n");

  // Shape summary the paper highlights.
  auto idx = [&](const std::string& name) {
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      if (algorithms[i] == name) return i;
    }
    return std::size_t{0};
  };
  const auto& n20 = table[1];
  std::printf("\nshape check at n=20:\n");
  std::printf("  ours vs LS improvement:  LERFA+SRFE %.0f%%, SRFAE %.0f%% "
              "(paper: 20-40%%)\n",
              100.0 * (1.0 - n20[idx("LERFA+SRFE")] / n20[idx("LS")]),
              100.0 * (1.0 - n20[idx("SRFAE")] / n20[idx("LS")]));
  std::printf("  ours vs SA improvement:  LERFA+SRFE %.0f%%, SRFAE %.0f%%\n",
              100.0 * (1.0 - n20[idx("LERFA+SRFE")] / n20[idx("SA")]),
              100.0 * (1.0 - n20[idx("SRFAE")] / n20[idx("SA")]));
  std::printf("  RANDOM / best ratio:     %.1fx (paper: ~3x)\n",
              n20[idx("RANDOM")] /
                  std::min(n20[idx("LERFA+SRFE")], n20[idx("SRFAE")]));
  std::printf("  growth n=10 -> n=30:     LERFA+SRFE %.2fx, LS %.2fx "
              "(ours should grow slower)\n",
              table[2][idx("LERFA+SRFE")] / table[0][idx("LERFA+SRFE")],
              table[2][idx("LS")] / table[0][idx("LS")]);
  return 0;
}
