// Shared data-acquisition plane bench (comm::ScanBroker).
//
// Sweeps the number of co-located AQs over one 8-mote sensor table from 1
// to 256 and runs every point twice: with the broker coalescing scans
// (Config::shared_scans = true) and with private per-AQ scans (the
// pre-broker baseline, shared_scans = false). Reports, per point and mode:
//
//   * sensory read_attr RPCs per engine epoch (the radio bill),
//   * tuples delivered to subscribers per epoch,
//   * batch fan-out latency p50/p99 (tick -> last delivery, simulated ms),
//   * total rising-edge events detected across the AQs.
//
// Acceptance: at 32 AQs the shared plane issues >= 5x fewer sensory RPCs
// per epoch than the private baseline, while every AQ detects the exact
// same events (same seed, same signals). Violations exit non-zero.
//
// Everything runs in simulated time on the deterministic event loop;
// writes results/bench_shared_scan.json.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/aorta.h"
#include "util/json_writer.h"
#include "util/stats.h"

namespace {

using aorta::util::Duration;

constexpr int kMotes = 8;
constexpr double kSimSeconds = 30.0;

struct ModeResult {
  double rpcs_per_epoch = 0.0;
  double tuples_per_epoch = 0.0;
  double coalesced_per_epoch = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  std::uint64_t events_total = 0;
  // Per-AQ event counts, for the identical-results check across modes.
  std::vector<std::uint64_t> events_per_aq;
};

// One run: `aqs` identical-threshold AQs over the same sensor table, with
// the shared plane on or off. The spike signals are seconds wide, so the
// millisecond-level acquisition-latency differences between the two modes
// cannot flip an epoch-level edge detection — event counts must match.
// `trace_path`, when set, turns on span tracing for the run and exports
// the Chrome trace next to the results JSON (tracing only records; the
// simulation and its event counts are unchanged).
ModeResult run_mode(int aqs, bool shared, const char* trace_path = nullptr) {
  aorta::core::Config cfg;
  cfg.seed = 42;
  cfg.shared_scans = shared;
  // This bench measures per-AQ acquisition topology (N private scans vs
  // one shared sweep); predicate-index delivery groups would collapse the
  // N identical subscriptions to one and hide exactly the RPC cost the
  // gate pins. Matching cost has its own sweep in bench_eval.
  cfg.predicate_index = false;
  cfg.tracing = trace_path != nullptr;
  aorta::core::Aorta sys(cfg);
  // Lossless, jitter-free links on BOTH ends: the engine's default LAN link
  // drops 0.1% of traversals, which at 256x the RPC volume would cost the
  // private baseline a few reads (and thus events) the shared plane never
  // risks — the identity check needs the radio bill to be the only
  // difference between the modes.
  (void)sys.network().set_link(aorta::comm::EngineNode::kNodeId,
                               aorta::net::LinkModel::perfect());
  for (int i = 0; i < kMotes; ++i) {
    std::string id = "mote" + std::to_string(i);
    (void)sys.add_mote(id, {static_cast<double>(i * 3), 0, 1});
    sys.mote(id)->reliability().glitch_prob = 0.0;
    (void)sys.network().set_link(id, aorta::net::LinkModel::perfect());
    (void)sys.mote(id)->set_signal(
        "accel_x",
        aorta::devices::periodic_spike_signal(
            0.0, 900.0, Duration::seconds(12.0), Duration::seconds(3.0),
            Duration::seconds(static_cast<double>(i))));
  }

  for (int q = 0; q < aqs; ++q) {
    std::string name = "aq" + std::to_string(q);
    auto r = sys.exec("CREATE AQ " + name +
                      " AS SELECT s.accel_x FROM sensor s "
                      "WHERE s.accel_x > 500");
    if (!r.is_ok()) {
      std::fprintf(stderr, "CREATE AQ failed: %s\n",
                   r.status().to_string().c_str());
      std::exit(2);
    }
  }
  sys.run_for(Duration::seconds(kSimSeconds));
  if (trace_path != nullptr) {
    auto st = sys.tracer().export_file(trace_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.to_string().c_str());
    }
  }

  ModeResult m;
  const aorta::comm::ScanBroker& broker = sys.scan_broker();
  aorta::comm::BrokerTypeStats totals = broker.totals();
  double epochs = static_cast<double>(broker.tick_count());
  if (epochs > 0) {
    m.rpcs_per_epoch = static_cast<double>(totals.rpcs_issued) / epochs;
    m.tuples_per_epoch = static_cast<double>(totals.tuples_delivered) / epochs;
    m.coalesced_per_epoch =
        static_cast<double>(totals.rpcs_coalesced) / epochs;
  }
  const aorta::util::Summary& lat = broker.batch_latency_ms();
  m.latency_p50_ms = lat.empty() ? 0.0 : lat.percentile(50.0);
  m.latency_p99_ms = lat.empty() ? 0.0 : lat.percentile(99.0);
  for (int q = 0; q < aqs; ++q) {
    const aorta::query::QueryStats* qs =
        sys.query_stats("aq" + std::to_string(q));
    std::uint64_t events = qs != nullptr ? qs->events : 0;
    m.events_per_aq.push_back(events);
    m.events_total += events;
  }
  return m;
}

}  // namespace

int main() {
  std::printf("Shared scan plane: sensory RPCs per epoch, %d motes, "
              "%g simulated seconds per point\n", kMotes, kSimSeconds);
  std::printf("\n%6s %14s %14s %9s %12s %12s %8s\n", "aqs", "rpc/ep:priv",
              "rpc/ep:shared", "saving", "p99ms:priv", "p99ms:shared",
              "events");

  std::error_code ec;
  std::filesystem::create_directories("results", ec);

  const std::vector<int> sweep = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  aorta::util::JsonWriter w(2);
  w.begin_object();
  w.kv("motes", kMotes);
  w.kv("sim_seconds", kSimSeconds);
  w.key("sweep").begin_array();
  bool events_identical = true;
  double saving_at_32 = 0.0;

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    int aqs = sweep[i];
    ModeResult priv = run_mode(aqs, /*shared=*/false);
    // The flagship 32-AQ shared run also exports its span trace: the
    // artifact CI schema-validates and Perfetto loads (README section
    // "Observability").
    ModeResult shared =
        run_mode(aqs, /*shared=*/true,
                 aqs == 32 ? "results/bench_shared_scan_trace.json" : nullptr);

    bool same = priv.events_per_aq == shared.events_per_aq;
    if (!same) events_identical = false;
    double saving = shared.rpcs_per_epoch == 0.0
                        ? 0.0
                        : priv.rpcs_per_epoch / shared.rpcs_per_epoch;
    if (aqs == 32) saving_at_32 = saving;

    std::printf("%6d %14.1f %14.1f %8.1fx %12.3f %12.3f %8llu%s\n", aqs,
                priv.rpcs_per_epoch, shared.rpcs_per_epoch, saving,
                priv.latency_p99_ms, shared.latency_p99_ms,
                static_cast<unsigned long long>(shared.events_total),
                same ? "" : "  EVENTS-DIVERGED");

    w.begin_object();
    w.kv("aqs", aqs);
    w.key("private").begin_object();
    w.kv("rpcs_per_epoch", priv.rpcs_per_epoch);
    w.kv("tuples_per_epoch", priv.tuples_per_epoch);
    w.key("latency_ms").begin_object();
    w.kv("p50", priv.latency_p50_ms);
    w.kv("p99", priv.latency_p99_ms);
    w.end_object();
    w.kv("events", priv.events_total);
    w.end_object();
    w.key("shared").begin_object();
    w.kv("rpcs_per_epoch", shared.rpcs_per_epoch);
    w.kv("tuples_per_epoch", shared.tuples_per_epoch);
    w.kv("coalesced_per_epoch", shared.coalesced_per_epoch);
    w.key("latency_ms").begin_object();
    w.kv("p50", shared.latency_p50_ms);
    w.kv("p99", shared.latency_p99_ms);
    w.end_object();
    w.kv("events", shared.events_total);
    w.end_object();
    w.kv("rpc_saving", saving);
    w.kv("events_identical", same);
    w.end_object();
  }
  w.end_array();
  w.kv("saving_at_32", saving_at_32);
  w.kv("events_identical", events_identical);
  w.end_object();

  std::ofstream out("results/bench_shared_scan.json");
  out << w.str() << '\n';
  std::printf("\nwrote results/bench_shared_scan.json\n");

  int rc = 0;
  if (saving_at_32 < 5.0) {
    std::printf("WARNING: RPC saving at 32 AQs is %.1fx, below the 5x "
                "target\n", saving_at_32);
    rc = 1;
  }
  if (!events_identical) {
    std::printf("WARNING: event detections diverged between shared and "
                "private acquisition\n");
    rc = 1;
  }
  return rc;
}
