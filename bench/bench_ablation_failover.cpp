// Ablation: action failover (retry on remaining candidates) vs one-shot
// dispatch, as the per-action failure probability rises.
//
// Retry is this reproduction's extension beyond the paper (the prototype
// reported failures to the application); the bench quantifies how much
// end-to-end usable-photo rate a single failover round buys on top of the
// paper's probing + locking.
#include <cstdio>

#include "core/aorta.h"
#include "util/strings.h"

using namespace aorta;

namespace {

struct Outcome {
  std::uint64_t usable = 0;
  std::uint64_t bad = 0;
  std::uint64_t retries = 0;
};

Outcome run(double glitch_prob, int max_retries, std::uint64_t seed) {
  core::Config config;
  config.seed = seed;
  config.max_retries = max_retries;
  core::Aorta sys(config);

  for (int c = 0; c < 4; ++c) {
    std::string id = util::str_format("cam%d", c + 1);
    (void)sys.add_camera(id, util::str_format("10.0.0.%d", c + 1),
                         {{4.0 * c, 0.0, 3.0}, 90.0}, 40.0);
    sys.camera(id)->reliability().glitch_prob = glitch_prob;
    sys.camera(id)->set_fatigue_coeff(0.0);  // isolate the glitch knob
  }
  for (int m = 0; m < 4; ++m) {
    std::string id = util::str_format("mote%d", m + 1);
    (void)sys.add_mote(id, {2.0 + 3.0 * m, 4.0, 1.0});
    (void)sys.mote(id)->set_signal(
        "accel_x",
        devices::periodic_spike_signal(0.0, 900.0, util::Duration::seconds(60),
                                       util::Duration::seconds(2),
                                       util::Duration::seconds(5)));
  }
  for (int q = 1; q <= 4; ++q) {
    (void)sys.exec(util::str_format(
        "CREATE AQ q%d AS SELECT photo(c.ip, s.loc, 'd') FROM sensor s, "
        "camera c WHERE s.id = 'mote%d' AND s.accel_x > 500 AND "
        "coverage(c.id, s.loc)",
        q, q));
  }

  sys.run_for(util::Duration::minutes(8));

  Outcome out;
  for (int q = 1; q <= 4; ++q) {
    auto as = sys.action_stats("q" + std::to_string(q));
    out.usable += as.usable;
    out.bad += as.total_bad();
  }
  for (const auto* op : sys.executor().operators()) {
    out.retries += op->stats().retries;
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "\n================================================================\n"
      "Ablation - failover retries vs per-action failure probability\n"
      "4 queries bursting each minute, 4 cameras, 8 sim-min, 3 seeds\n"
      "================================================================\n");
  std::printf("%14s %10s %10s %10s %12s %10s\n", "glitch prob", "retries",
              "usable", "bad", "fail rate", "failovers");

  for (double glitch : {0.05, 0.15, 0.30}) {
    for (int max_retries : {0, 1, 2}) {
      std::uint64_t usable = 0, bad = 0, retries = 0;
      const int kSeeds = 3;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        Outcome out = run(glitch, max_retries, seed);
        usable += out.usable;
        bad += out.bad;
        retries += out.retries;
      }
      double completed = static_cast<double>(usable + bad);
      std::printf("%14.2f %10d %10llu %10llu %11.1f%% %10llu\n", glitch,
                  max_retries, static_cast<unsigned long long>(usable),
                  static_cast<unsigned long long>(bad),
                  completed == 0 ? 0.0 : 100.0 * bad / completed,
                  static_cast<unsigned long long>(retries));
    }
  }
  std::printf("\nexpectation: at glitch p and r retry rounds the residual\n"
              "failure rate tracks p^(r+1) (independent failures across\n"
              "candidates), so one round cuts failures roughly by 1/p.\n");
  return 0;
}
