// Sharded czar/worker scalability bench (src/shard + src/server).
//
// Sweeps session count x shard count: N closed-loop clients across 10
// tenants submit SELECTs and CREATE AQs through a `server::QueryService`
// running in sharded mode (`ServiceConfig::num_shards`), where the czar
// plans each statement into per-shard fragments and merges the partials.
// num_shards=1 is the ablation baseline: the same czar/fragment/merge
// machinery with a single worker engine, i.e. today's single-engine
// capacity behind the sharded interface.
//
// Capacity model: each worker is a full vertical engine (executor, scan
// broker, scheduler), so the service's dispatch budget — the per-tick
// drain that bounds execution throughput — scales linearly with the
// worker count, as does the admission queue backing it. The admission
// front door (parse, quota, queue) stays shared: that is the czar.
//
// Acceptance (checked by bench/baselines/bench_sharded_scale.json):
//   - >= 3x completed-queries/s at 8 workers vs 1 worker on 10k sessions
//   - shed rate at 100k sessions (8 workers) below the single-engine
//     10k-session shed rate (94.9%, bench_server_scale's 10k sweep point
//     — the plateau that motivated the sharded plane)
//   - parallel-runtime section: the 10k-session / 8-shard point re-run at
//     1/2/4/8 runtime threads must produce identical simulated results
//     (wallclock.deterministic), and on a machine with >= 8 hardware
//     threads the 8-thread run must finish >= 4x faster in wall-clock
//     time than the 1-thread run (wallclock.gate_ok; the wall-clock gate
//     is recorded as skipped on smaller machines — wall time is the one
//     number here that is machine-dependent).
//
// Simulated metrics are deterministic and identical across machines;
// wall-clock numbers in the "wallclock" section are not and only get the
// conditional directional gate above.
// Writes results/bench_sharded_scale.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/aorta.h"
#include "server/service.h"
#include "server/workload_gen.h"
#include "shard/plane.h"
#include "util/json_writer.h"
#include "util/stats.h"

namespace {

using aorta::util::Duration;

constexpr int kTenants = 10;
constexpr double kSimSeconds = 30.0;

// Same instrumented building as bench_server_scale, but registered
// through the plane so the hash partition spreads the motes across the
// worker registries.
void build_world(aorta::server::QueryService& service) {
  aorta::shard::Plane* plane = service.plane();
  for (int i = 0; i < 8; ++i) {
    std::string id = "mote" + std::to_string(i);
    (void)plane->add_mote(id, {static_cast<double>(i * 3), 0, 1}, 1 + i % 2);
    (void)plane->mote(id)->set_signal(
        "accel_x",
        aorta::devices::periodic_spike_signal(
            0.0, 900.0, Duration::seconds(10.0), Duration::seconds(1.0),
            Duration::seconds(static_cast<double>(i))));
    (void)plane->mote(id)->set_signal("temp",
                                      aorta::devices::constant_signal(22.0));
  }
}

struct RunResult {
  aorta::server::AdmissionStats admission;
  aorta::util::Summary latency_ms;
  std::uint64_t completed_total = 0;
  std::uint64_t selects_merged = 0;   // czar-side one-shot merges
  std::uint64_t rows_received = 0;    // continuous rows into the merger
  int workers_live = 0;
  double wall_ms = 0.0;  // wall-clock time of the run_for (machine-local)
};

RunResult run_point(int sessions, int shards, int runtime_threads = 1) {
  aorta::core::Config cfg;
  cfg.scan_freshness = Duration::millis(250);
  cfg.runtime_threads = runtime_threads;
  aorta::core::Aorta sys(cfg);

  aorta::server::ServiceConfig sc;
  sc.num_shards = shards;
  // Capacity model: the dispatch budget (64 statements per 100 ms tick
  // per worker — the same per-engine figure bench_server_scale runs with)
  // and the queue backing it scale with the worker count; the admission
  // front door stays shared. The per-tenant in-flight quota is opened up
  // so the dispatch budget, not the quota, is the contended resource
  // being scaled.
  sc.max_dispatch_per_tick = 64 * static_cast<std::size_t>(shards);
  sc.admission.queue_capacity = 1024 * static_cast<std::size_t>(shards);
  sc.admission.max_inflight_selects_per_tenant = 1 << 20;
  sc.admission.max_aqs_per_tenant = 64 * static_cast<std::size_t>(shards);
  sc.admission.policy = aorta::util::OverflowPolicy::kShedOldest;
  sc.admission.fair_dequeue = true;
  aorta::server::QueryService service(&sys, sc);
  build_world(service);

  aorta::server::WorkloadConfig wc;
  wc.tenants = kTenants;
  wc.sessions_per_tenant = sessions / kTenants;
  wc.mode = aorta::server::WorkloadConfig::Mode::kClosedLoop;
  wc.think = Duration::seconds(1.0);
  wc.seed = 1000 + static_cast<std::uint64_t>(sessions) +
            static_cast<std::uint64_t>(shards);
  aorta::server::WorkloadGen gen(&service, &sys, wc);
  gen.start();
  const auto wall_start = std::chrono::steady_clock::now();
  sys.run_for(Duration::seconds(kSimSeconds));
  const auto wall_end = std::chrono::steady_clock::now();
  gen.stop();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(wall_end - wall_start)
                  .count();
  r.admission = service.admission().stats();
  r.latency_ms = service.admission_latency_ms();
  for (const auto& [tenant, ts] : service.tenant_stats()) {
    r.completed_total += ts.completed;
  }
  const aorta::shard::Czar& czar = service.plane()->czar();
  r.selects_merged = czar.stats().selects;
  r.rows_received = czar.stats().rows_received;
  for (int i = 0; i < shards; ++i) {
    r.workers_live += czar.worker_live(i) ? 1 : 0;
  }
  return r;
}

double shed_pct(const RunResult& r) {
  return r.admission.submitted == 0
             ? 0.0
             : 100.0 * static_cast<double>(r.admission.shed) /
                   static_cast<double>(r.admission.submitted);
}

}  // namespace

int main(int argc, char** argv) {
  // The full 2x4 cross product runs ~100k-session points at every shard
  // count; CI only needs the acceptance points, so the sweep defaults to
  // the 10k row plus the 100k endpoints and --full unlocks the rest.
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  std::printf("Sharded czar/worker scalability (simulated time, "
              "deterministic)%s\n", full ? " [--full]" : "");

  const std::vector<int> shard_counts = {1, 2, 4, 8};
  const std::vector<int> session_counts = {10000, 100000};
  double thruput_10k_1 = 0.0, thruput_10k_8 = 0.0;
  double shed_10k_1 = 0.0, shed_100k_8 = 0.0;

  std::printf("\n%8s %7s %10s %12s %10s %10s %8s %6s\n", "sessions", "shards",
              "completed", "thruput/s", "p50_ms", "p99_ms", "shed%", "live");
  aorta::util::JsonWriter w(2);
  w.begin_object();
  w.key("sweep").begin_array();
  for (int sessions : session_counts) {
    for (int shards : shard_counts) {
      const bool acceptance_point =
          sessions == 10000 || shards == 1 || shards == 8;
      if (!full && !acceptance_point) {
        std::printf("%8d %7d %s\n", sessions, shards,
                    "(skipped; rerun with --full)");
        continue;
      }
      RunResult r = run_point(sessions, shards);
      double thruput = static_cast<double>(r.completed_total) / kSimSeconds;
      double p50 = r.latency_ms.empty() ? 0.0 : r.latency_ms.percentile(50.0);
      double p99 = r.latency_ms.empty() ? 0.0 : r.latency_ms.percentile(99.0);
      double shed = shed_pct(r);
      if (sessions == 10000 && shards == 1) {
        thruput_10k_1 = thruput;
        shed_10k_1 = shed;
      }
      if (sessions == 10000 && shards == 8) thruput_10k_8 = thruput;
      if (sessions == 100000 && shards == 8) shed_100k_8 = shed;
      std::printf("%8d %7d %10llu %12.1f %10.3f %10.3f %8.2f %6d\n", sessions,
                  shards, static_cast<unsigned long long>(r.completed_total),
                  thruput, p50, p99, shed, r.workers_live);
      w.begin_object();
      w.kv("sessions", sessions);
      w.kv("shards", shards);
      w.kv("completed", r.completed_total);
      w.kv("throughput_per_s", thruput);
      w.key("admission_latency_ms").begin_object();
      w.kv("p50", p50);
      w.kv("p99", p99);
      w.end_object();
      w.kv("submitted", r.admission.submitted);
      w.kv("admitted", r.admission.admitted);
      w.kv("dispatched", r.admission.dispatched);
      w.kv("shed", r.admission.shed);
      w.kv("shed_pct", shed);
      w.kv("selects_merged", r.selects_merged);
      w.kv("rows_received", r.rows_received);
      w.kv("workers_live", r.workers_live);
      w.end_object();
    }
  }
  w.end_array();

  // The shed plateau the sharded plane is meant to break: the unsharded
  // engine's 10k-session sweep point in bench_server_scale.
  const double kSingleEngineShed10k = 94.9;
  const double speedup =
      thruput_10k_1 == 0.0 ? 0.0 : thruput_10k_8 / thruput_10k_1;
  std::printf("\n8-worker vs 1-worker speedup at 10k sessions: %.2fx\n",
              speedup);
  std::printf("shed at 100k sessions / 8 workers: %.2f%% "
              "(single-engine 10k reference: %.2f%%; 1 worker / 10k "
              "sessions here: %.2f%%)\n",
              shed_100k_8, kSingleEngineShed10k, shed_10k_1);

  w.key("summary").begin_object();
  w.kv("speedup_8v1_10k", speedup);
  w.kv("shed_pct_10k_1shard", shed_10k_1);
  w.kv("shed_pct_100k_8shard", shed_100k_8);
  w.kv("single_engine_shed_pct_10k", kSingleEngineShed10k);
  w.end_object();

  // ---- parallel runtime: wall-clock epoch throughput ---------------------
  // The 10k-session / 8-shard acceptance point re-run with the per-shard
  // event loops stepped by 1, 2, 4 and 8 OS threads. Simulated results
  // must be identical (the epoch-barrier runtime is deterministic by
  // construction); wall-clock time is the only thing allowed to change.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_active = hw >= 8;
  std::printf("\nParallel runtime wall-clock sweep "
              "(10k sessions, 8 shards; %u hardware threads)\n", hw);
  std::printf("%8s %12s %14s %10s %12s\n", "threads", "wall_ms",
              "sim_s/wall_s", "completed", "rows_recv");
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  double wall_1t = 0.0, wall_8t = 0.0;
  bool deterministic = true;
  std::uint64_t ref_completed = 0, ref_rows = 0;
  w.key("wallclock").begin_object();
  w.kv("hardware_concurrency", static_cast<std::uint64_t>(hw));
  w.key("sweep").begin_array();
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const int threads = thread_counts[i];
    RunResult r = run_point(10000, 8, threads);
    if (i == 0) {
      ref_completed = r.completed_total;
      ref_rows = r.rows_received;
    } else if (r.completed_total != ref_completed ||
               r.rows_received != ref_rows) {
      deterministic = false;
    }
    if (threads == 1) wall_1t = r.wall_ms;
    if (threads == 8) wall_8t = r.wall_ms;
    const double rate = r.wall_ms == 0.0
                            ? 0.0
                            : kSimSeconds / (r.wall_ms / 1000.0);
    std::printf("%8d %12.1f %14.2f %10llu %12llu\n", threads, r.wall_ms, rate,
                static_cast<unsigned long long>(r.completed_total),
                static_cast<unsigned long long>(r.rows_received));
    w.begin_object();
    w.kv("threads", threads);
    w.kv("wall_ms", r.wall_ms);
    w.kv("sim_seconds_per_wall_second", rate);
    w.kv("completed", r.completed_total);
    w.kv("rows_received", r.rows_received);
    w.end_object();
  }
  w.end_array();
  const double wall_speedup = wall_8t == 0.0 ? 0.0 : wall_1t / wall_8t;
  // gate_ok is what the committed baseline pins: the >= 4x wall-clock
  // target where the hardware can express it, vacuously true (and
  // recorded as skipped) on smaller machines.
  const bool gate_ok = !gate_active || wall_speedup >= 4.0;
  std::printf("8-thread vs 1-thread wall-clock speedup: %.2fx (gate %s)\n",
              wall_speedup,
              !gate_active ? "skipped: <8 hardware threads"
                           : (gate_ok ? "ok" : "FAILED"));
  if (!deterministic) {
    std::printf("ERROR: simulated results differ across thread counts\n");
  }
  w.kv("speedup_8t_v_1t", wall_speedup);
  w.kv("gate_active", gate_active);
  w.kv("gate_ok", gate_ok);
  w.kv("deterministic", deterministic);
  w.end_object();
  w.end_object();

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream out("results/bench_sharded_scale.json");
  out << w.str() << '\n';
  std::printf("\nwrote results/bench_sharded_scale.json\n");

  int rc = 0;
  if (speedup < 3.0) {
    std::printf("WARNING: speedup %.2fx is below the 3x scaling target\n",
                speedup);
    rc = 1;
  }
  if (shed_100k_8 >= kSingleEngineShed10k) {
    std::printf("WARNING: 100k-session shed %.2f%% did not improve on the "
                "single-engine 10k rate %.2f%%\n", shed_100k_8,
                kSingleEngineShed10k);
    rc = 1;
  }
  if (!gate_ok) {
    std::printf("WARNING: wall-clock speedup %.2fx is below the 4x target "
                "at 8 runtime threads\n", wall_speedup);
    rc = 1;
  }
  if (!deterministic) {
    std::printf("WARNING: parallel runtime broke simulated determinism\n");
    rc = 1;
  }
  return rc;
}
