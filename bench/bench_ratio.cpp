// Section 6.3 (prose): "with a uniformly distributed workload, the
// performance of the four scheduling algorithms (except for RANDOM) was
// only affected by the average number of requests scheduled on each
// device (i.e., #requests / #devices)."
//
// This bench sweeps (n, m) pairs at fixed ratios and at varying ratios to
// show service makespan tracks the ratio, not the absolute sizes.
#include "bench/bench_common.h"
#include "sched/cost_model.h"

int main() {
  using namespace aorta;
  using namespace aorta::benchx;

  auto model = sched::PhotoCostModel::axis2130();
  const std::vector<std::string> algorithms = {"LERFA+SRFE", "SRFAE", "LS", "SA"};

  print_header(
      "Section 6.3 - Ratio invariance: service makespan vs (#requests, #devices)\n"
      "cells = service makespan seconds, avg of 10 runs (scheduling excluded)");

  struct Point {
    int n, m;
  };
  const std::vector<Point> fixed_ratio = {{10, 5}, {20, 10}, {30, 15}, {40, 20}};
  const std::vector<Point> varying_ratio = {{10, 10}, {20, 10}, {30, 10}, {40, 10}};

  for (const auto& [label, points] :
       std::vector<std::pair<std::string, std::vector<Point>>>{
           {"fixed ratio n/m = 2 (rows should be flat)", fixed_ratio},
           {"varying ratio n/m = 1..4 (rows should grow)", varying_ratio}}) {
    std::printf("\n-- %s --\n", label.c_str());
    std::printf("%12s", "algorithm");
    for (const auto& p : points) std::printf("   n=%-3d m=%-3d", p.n, p.m);
    std::printf("\n");
    for (const auto& algorithm : algorithms) {
      std::printf("%12s", algorithm.c_str());
      for (const auto& p : points) {
        sched::WorkloadSpec spec;
        spec.n_requests = p.n;
        spec.n_devices = p.m;
        Cell cell = run_cell(algorithm, spec, *model);
        std::printf("   %10.2f ", cell.service_s.mean());
      }
      std::printf("\n");
    }
  }
  return 0;
}
